//! Engine workers: claim an admission-queue group, stream its units
//! through the batched transient engine, and refill retiring lanes
//! from the queue — continuous batching across client requests.
//!
//! A *group* is everything sharing one engine-group key (topology +
//! fault hypothesis + V_DD + transient spec); seed, spread, and die
//! index are deliberately absent from the key, so dies from different
//! jobs — and both phases of the two-run procedure, which share a
//! topology — interleave in one engine session. Per-die results stay
//! bit-identical to standalone runs because the batched engine is
//! composition-independent and every ring is built through
//! [`TestBench::ro_configs`], the same construction path the
//! standalone measurements use.

use std::cell::RefCell;
use std::sync::Arc;

use rotsv::ro::RingOscillator;
use rotsv::{die_seed, Die, TestBench};

use crate::server::{Phase, Shared, Unit};

/// Runs until the queue shuts down and drains: claim a group, stream
/// it, release, repeat.
pub fn worker_loop(shared: &Shared) {
    while let Some(key) = shared.queue.claim() {
        loop {
            let units = shared.queue.take_all(&key);
            if units.is_empty() {
                if shared.queue.release_if_empty(&key) {
                    break;
                }
                // Units landed between take_all and release: go again.
                continue;
            }
            run_session(shared, &key, units);
        }
    }
}

/// One engine session over a claimed group: seats the drained units,
/// then keeps pulling freshly admitted units into retiring lanes until
/// the group runs dry.
fn run_session(shared: &Shared, key: &str, units: Vec<Unit>) {
    if rotsv_obs::metrics_enabled() {
        rotsv_obs::counter("server.engine_sessions").add(1);
    }
    // Every unit in a group shares these by construction of the key.
    let spec = units[0].job.spec.clone();
    let vdd = spec.vdds[units[0].vdd_idx];
    let bench = if spec.fast {
        TestBench::fast(spec.n_segments)
    } else {
        TestBench::new(spec.n_segments)
    };
    let opts = bench.opts_for(vdd);
    let faults = spec.fault.faults(spec.n_segments);
    let (enabled_cfg, bypassed_cfg) = bench.ro_configs(vdd, &faults, &spec.under_test);

    let build_ro = |unit: &Unit| -> RingOscillator {
        let job = &unit.job.spec;
        let die = Die::new(job.spread.spread(), die_seed(job.seed, unit.sample));
        let cfg = match unit.phase {
            Phase::Enabled => &enabled_cfg,
            Phase::Bypassed => &bypassed_cfg,
        };
        let mut ro = RingOscillator::build(cfg, &mut die.variation());
        ro.set_symbolic_cache(Arc::clone(&shared.cache));
        ro
    };

    let initial: Vec<RingOscillator> = units.iter().map(&build_ro).collect();
    let seated = RefCell::new(units);
    let delivered = RefCell::new(vec![false; seated.borrow().len()]);

    let mut source = || {
        shared.queue.take_one(key).map(|unit| {
            let ro = build_ro(&unit);
            seated.borrow_mut().push(unit);
            delivered.borrow_mut().push(false);
            ro
        })
    };
    let mut sink =
        |idx: usize, outcome: rotsv::ro::OscillationOutcome, stats: rotsv::spice::SolverStats| {
            delivered.borrow_mut()[idx] = true;
            seated.borrow()[idx].record_outcome(outcome, stats);
        };

    let result = RingOscillator::measure_stream_with_stats(
        initial,
        shared.config.lanes,
        &opts,
        &mut source,
        &mut sink,
    );
    if let Err(e) = result {
        // The whole session is lost: fail every seated-but-undelivered
        // unit, then drain the group so a poisoned topology cannot spin
        // claim/fail forever.
        let reason = format!("engine failure: {e}");
        let seated = seated.into_inner();
        let delivered = delivered.into_inner();
        for (unit, done) in seated.iter().zip(&delivered) {
            if !done {
                unit.record_failure(&reason);
            }
        }
        while let Some(unit) = shared.queue.take_one(key) {
            unit.record_failure(&reason);
        }
    }
}
