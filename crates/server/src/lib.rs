#![warn(missing_docs)]

//! # rotsv-server — resident wafer-screening daemon
//!
//! A screening floor does not run one wafer and exit: jobs arrive
//! continuously, and the expensive asset — a warm batched transient
//! engine with its symbolic factorizations — should never drain
//! between them. This crate wraps the `rotsv` stack in a resident
//! daemon speaking line-delimited JSON over TCP:
//!
//! * **Continuous batching** ([`engine`]): submitted jobs expand into
//!   per-`(die, V_DD, run)` measurement units on a bounded, group-keyed
//!   admission queue ([`queue`]). Engine workers claim a group
//!   (topology + fault hypothesis + voltage) and stream it through
//!   `transient_stream`: a lane that retires refills from the queue
//!   mid-transient, so units admitted while a group is in flight join
//!   the running batch instead of waiting behind it. Both phases of
//!   the two-run ΔT procedure share a topology, hence a group — they
//!   interleave in the same engine session.
//! * **Bit-identical verdicts**: every ring is built through
//!   `TestBench::ro_configs` and `die_seed`, the exact construction
//!   path of the standalone measurement APIs, and the batched engine
//!   is composition-independent — so a die's ΔT does not depend on
//!   what else the server happened to be screening.
//! * **Backpressure** ([`server`]): admission is all-or-nothing
//!   against a unit bound, oversized jobs are rejected by a per-job
//!   die cap, and a draining server refuses new work while flushing
//!   every in-flight verdict and per-job run manifest.
//! * **Observability**: the process-wide metrics registry feeds both
//!   the `metrics` request (Prometheus text exposition inline) and a
//!   periodic `metrics.prom` snapshot; each job's `done` trailer
//!   carries a run manifest built by `rotsv-obs`.
//!
//! The [`loadgen`] module drives a listening server at a target
//! arrival rate and reports sustained dies/sec with client-observed
//! tail latency; the solver benchmark harness runs it in-process to
//! regression-gate server throughput.
//!
//! ## Wire protocol
//!
//! See [`protocol`] for the request/response schema. A minimal
//! session:
//!
//! ```text
//! → {"type":"submit","id":1,"n_segments":2,"dies":2,"vdd":1.1}
//! ← {"type":"admitted","id":1,"job":1,"units":4,"queue_depth":4}
//! ← {"type":"verdict","id":1,"job":1,"vdd":1.1,"die":0,"status":"ok","delta_t":...}
//! ← {"type":"verdict","id":1,"job":1,"vdd":1.1,"die":1,"status":"ok","delta_t":...}
//! ← {"type":"done","id":1,"job":1,"verdicts":2,...,"manifest":{...}}
//! ```

pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;

pub use server::{Server, ServerConfig};
