//! Cross-request admission queue with bounded depth and group claims.
//!
//! Every submitted job expands into measurement *units* — one
//! `(die, V_DD, run)` triple each — keyed by the job's engine-group key
//! (topology + shared transient spec). Workers claim whole groups;
//! within a claimed group the engine pulls units one at a time at lane
//! retirement, which is what turns per-request batching into
//! continuous batching: a unit admitted while the group is mid-
//! transient seats into the next retiring lane instead of waiting for
//! a fresh batch.
//!
//! The queue is bounded in *units* (not jobs): a submit either admits
//! entirely or is rejected with a backpressure response — partial
//! admission would deadlock a job's verdict accounting.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use crate::server::Unit;

/// Why a submit was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded queue cannot take the job's units.
    Full {
        /// Units currently queued.
        depth: usize,
        /// Queue capacity in units.
        cap: usize,
    },
    /// The server is draining; no new work is accepted.
    ShuttingDown,
}

#[derive(Default)]
struct Group {
    pending: VecDeque<Unit>,
    /// A worker is running an engine session over this group.
    claimed: bool,
}

struct Inner {
    groups: BTreeMap<String, Group>,
    /// Total queued units across groups.
    depth: usize,
    shutdown: bool,
}

/// The bounded, group-keyed admission queue.
pub struct AdmissionQueue {
    cap: usize,
    inner: Mutex<Inner>,
    /// Signalled on admit and on shutdown; workers wait here.
    work: Condvar,
}

impl AdmissionQueue {
    /// A queue admitting at most `cap` units.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            inner: Mutex::new(Inner {
                groups: BTreeMap::new(),
                depth: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    fn publish_depth(depth: usize) {
        if rotsv_obs::metrics_enabled() {
            rotsv_obs::gauge("server.queue_depth").set(depth as f64);
        }
    }

    /// Admits every `(key, unit)` pair atomically, or none of them.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Full`] when the batch would exceed the bound,
    /// [`AdmitError::ShuttingDown`] once draining has begun.
    pub fn admit(&self, units: Vec<(String, Unit)>) -> Result<usize, AdmitError> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        if inner.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        if inner.depth + units.len() > self.cap {
            return Err(AdmitError::Full {
                depth: inner.depth,
                cap: self.cap,
            });
        }
        inner.depth += units.len();
        for (key, unit) in units {
            inner.groups.entry(key).or_default().pending.push_back(unit);
        }
        let depth = inner.depth;
        Self::publish_depth(depth);
        self.work.notify_all();
        Ok(depth)
    }

    /// Blocks until an unclaimed non-empty group exists (returning its
    /// key, now claimed by the caller) or the queue is shut down *and*
    /// empty (returning `None` — the worker should exit).
    pub fn claim(&self) -> Option<String> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        loop {
            if let Some(key) = inner
                .groups
                .iter()
                .find(|(_, g)| !g.claimed && !g.pending.is_empty())
                .map(|(k, _)| k.clone())
            {
                inner
                    .groups
                    .get_mut(&key)
                    .expect("group just found")
                    .claimed = true;
                return Some(key);
            }
            if inner.shutdown && inner.depth == 0 {
                return None;
            }
            inner = self.work.wait(inner).expect("admission queue poisoned");
        }
    }

    /// Drains every pending unit of the claimed group `key`.
    pub fn take_all(&self, key: &str) -> Vec<Unit> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        let Some(group) = inner.groups.get_mut(key) else {
            return Vec::new();
        };
        let taken: Vec<Unit> = group.pending.drain(..).collect();
        inner.depth -= taken.len();
        Self::publish_depth(inner.depth);
        taken
    }

    /// Pops one pending unit of the claimed group `key`, without
    /// blocking — the engine calls this from a retiring lane.
    pub fn take_one(&self, key: &str) -> Option<Unit> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        let unit = inner.groups.get_mut(key)?.pending.pop_front()?;
        inner.depth -= 1;
        Self::publish_depth(inner.depth);
        Some(unit)
    }

    /// Releases the claim on `key` if the group is still empty; returns
    /// `false` (claim retained) when units arrived since the last
    /// `take_*`, so the caller loops instead of racing a lost wakeup.
    pub fn release_if_empty(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        let Some(group) = inner.groups.get_mut(key) else {
            return true;
        };
        if group.pending.is_empty() {
            group.claimed = false;
            inner.groups.remove(key);
            true
        } else {
            false
        }
    }

    /// Begins draining: new submits fail, blocked workers wake, and
    /// [`AdmissionQueue::claim`] returns `None` once the queue empties.
    pub fn begin_shutdown(&self) {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        inner.shutdown = true;
        drop(inner);
        self.work.notify_all();
    }

    /// Units currently queued (for backpressure responses).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("admission queue poisoned").depth
    }
}
