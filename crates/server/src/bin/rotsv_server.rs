//! The `rotsv-server` daemon: binds, prints the listen address, and
//! serves screening jobs until a client sends `{"type":"shutdown"}`.

use std::process::ExitCode;

use rotsv_server::{Server, ServerConfig};

const USAGE: &str = "\
usage: rotsv-server [flags]
  --listen ADDR             listen address (default 127.0.0.1:0)
  --lanes N                 transient lanes per engine session (default 8)
  --workers N               engine worker threads (default 2)
  --queue-cap N             admission queue capacity in units (default 4096)
  --max-dies N              per-job die cap (default 1024)
  --metrics-out PATH        write Prometheus snapshots to PATH
  --metrics-interval-ms MS  snapshot interval (default 1000)
  --port-file PATH          write the bound host:port to PATH";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let config = match ServerConfig::parse_args(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("rotsv-server: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("rotsv-server: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The CI smoke and scripts scrape this line for the bound port.
    println!("listening on {}", server.addr());
    match server.wait() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rotsv-server: shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}
