//! Minimal line-protocol client for the screening daemon — what the
//! CI smoke uses to submit a job mix and collect streamed verdicts.
//!
//! Subcommands:
//!
//! * `submit ADDR JSON...` — send each JSON request line, then print
//!   every response line until all submitted jobs are done (or
//!   rejected). Exits non-zero on error verdicts or protocol errors.
//! * `metrics ADDR` — print the server's Prometheus exposition.
//! * `shutdown ADDR` — ask the server to drain and exit.

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;

use rotsv_obs::Json;

const USAGE: &str = "usage: rotsv-client submit ADDR JSON... | metrics ADDR | shutdown ADDR";

fn connect(addr: &str) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    Ok((BufReader::new(read_half), BufWriter::new(stream)))
}

fn read_doc(reader: &mut BufReader<TcpStream>) -> Result<Json, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    println!("{}", line.trim());
    rotsv_obs::json::parse(line.trim()).map_err(|e| format!("unparsable response: {e}"))
}

fn submit(addr: &str, requests: &[String]) -> Result<(), String> {
    let (mut reader, mut writer) = connect(addr)?;
    let mut open = 0usize;
    for req in requests {
        let doc = rotsv_obs::json::parse(req).map_err(|e| format!("bad request {req:?}: {e}"))?;
        if doc.get("type").and_then(Json::as_str) == Some("submit") {
            open += 1;
        }
        writeln!(writer, "{req}").map_err(|e| format!("send: {e}"))?;
    }
    writer.flush().map_err(|e| format!("send flush: {e}"))?;
    let mut failures = 0usize;
    while open > 0 {
        let doc = read_doc(&mut reader)?;
        match doc.get("type").and_then(Json::as_str).unwrap_or("") {
            "done" => open -= 1,
            "rejected" => {
                open -= 1;
                failures += 1;
            }
            "verdict" if doc.get("status").and_then(Json::as_str) == Some("error") => {
                failures += 1;
            }
            "error" => failures += 1,
            _ => {}
        }
    }
    if failures > 0 {
        return Err(format!("{failures} failure responses"));
    }
    Ok(())
}

fn one_shot(addr: &str, request: &str, expect: &str) -> Result<Json, String> {
    let (mut reader, mut writer) = connect(addr)?;
    writeln!(writer, "{request}").map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send flush: {e}"))?;
    let doc = read_doc(&mut reader)?;
    let ty = doc.get("type").and_then(Json::as_str).unwrap_or("");
    if ty != expect {
        return Err(format!("expected {expect:?} response, got {ty:?}"));
    }
    Ok(doc)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("submit") if args.len() >= 3 => submit(&args[1], &args[2..]),
        Some("metrics") if args.len() == 2 => {
            let doc = one_shot(&args[1], r#"{"type":"metrics"}"#, "metrics")?;
            let text = doc
                .get("text")
                .and_then(Json::as_str)
                .ok_or("metrics response lacks text")?;
            print!("{text}");
            Ok(())
        }
        Some("shutdown") if args.len() == 2 => {
            one_shot(&args[1], r#"{"type":"shutdown"}"#, "shutting_down").map(|_| ())
        }
        _ => Err(USAGE.into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rotsv-client: {e}");
            ExitCode::FAILURE
        }
    }
}
