//! The resident screening daemon: socket handling, per-job verdict
//! accounting, and graceful-drain lifecycle.
//!
//! One thread per client connection parses line-delimited JSON
//! requests; admitted jobs expand into measurement units on the
//! [`AdmissionQueue`], engine workers (see [`crate::engine`]) stream
//! verdicts back through each job's response channel as lanes retire,
//! and a `done` trailer carrying the run manifest closes every job.

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rotsv::ro::OscillationOutcome;
use rotsv::spice::SolverStats;
use rotsv::DeltaTMeasurement;
use rotsv_num::SymbolicCache;
use rotsv_obs::{build_manifest, render_prometheus, Json, ManifestInputs, PrometheusFlusher};

use crate::engine;
use crate::protocol::{parse_request, render_line, JobSpec, Request};
use crate::queue::{AdmissionQueue, AdmitError};

/// Which of the two ΔT runs a unit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Run 1: the TSVs under test are in the loop (T₁).
    Enabled,
    /// Run 2: every TSV bypassed (T₂, the reference).
    Bypassed,
}

/// One schedulable measurement: a single transient of one die's ring
/// at one voltage in one phase of the two-run procedure. Both phases
/// of a `(die, V_DD)` slot must retire before its ΔT verdict streams.
pub struct Unit {
    pub(crate) job: Arc<JobState>,
    pub(crate) vdd_idx: usize,
    pub(crate) sample: usize,
    pub(crate) phase: Phase,
}

impl Unit {
    pub(crate) fn record_outcome(&self, outcome: OscillationOutcome, stats: SolverStats) {
        self.job
            .record(self.vdd_idx, self.sample, self.phase, outcome, stats);
    }

    pub(crate) fn record_failure(&self, reason: &str) {
        self.job.record_failure(self.vdd_idx, self.sample, reason);
    }
}

#[derive(Default)]
struct Slot {
    t1: Option<OscillationOutcome>,
    t2: Option<OscillationOutcome>,
    failed: bool,
}

struct Progress {
    /// Indexed `vdd_idx * dies + sample`.
    slots: Vec<Slot>,
    stats: SolverStats,
    verdicts: usize,
    ok: usize,
    stuck: usize,
    reference_failed: usize,
    errors: usize,
    done_sent: bool,
}

/// Server-side state of one admitted job: verdict accounting plus the
/// owning client's response channel.
pub struct JobState {
    server_id: u64,
    client_id: Json,
    pub(crate) spec: JobSpec,
    threads: usize,
    submitted: Instant,
    tx: Sender<String>,
    tracker: Arc<JobTracker>,
    progress: Mutex<Progress>,
}

impl JobState {
    fn new(
        server_id: u64,
        client_id: Json,
        spec: JobSpec,
        threads: usize,
        tx: Sender<String>,
        tracker: Arc<JobTracker>,
    ) -> Self {
        let slots = (0..spec.dies * spec.vdds.len())
            .map(|_| Slot::default())
            .collect();
        Self {
            server_id,
            client_id,
            spec,
            threads,
            submitted: Instant::now(),
            tx,
            tracker,
            progress: Mutex::new(Progress {
                slots,
                stats: SolverStats::default(),
                verdicts: 0,
                ok: 0,
                stuck: 0,
                reference_failed: 0,
                errors: 0,
                done_sent: false,
            }),
        }
    }

    fn opt_num(v: Option<f64>) -> Json {
        v.map(Json::Num).unwrap_or(Json::Null)
    }

    fn record(
        &self,
        vdd_idx: usize,
        sample: usize,
        phase: Phase,
        outcome: OscillationOutcome,
        stats: SolverStats,
    ) {
        let latency = self.submitted.elapsed().as_secs_f64();
        let mut p = self.progress.lock().expect("job progress poisoned");
        p.stats.merge(&stats);
        let idx = vdd_idx * self.spec.dies + sample;
        let (t1, t2) = {
            let slot = &mut p.slots[idx];
            match phase {
                Phase::Enabled => slot.t1 = Some(outcome),
                Phase::Bypassed => slot.t2 = Some(outcome),
            }
            if slot.failed || slot.t1.is_none() || slot.t2.is_none() {
                return;
            }
            (
                slot.t1.clone().expect("t1 just checked"),
                slot.t2.clone().expect("t2 just checked"),
            )
        };
        let m = DeltaTMeasurement { t1, t2, stats };
        let status = if m.delta().is_some() {
            p.ok += 1;
            "ok"
        } else if m.is_stuck() {
            p.stuck += 1;
            "stuck"
        } else {
            p.reference_failed += 1;
            "reference_failed"
        };
        p.verdicts += 1;
        if rotsv_obs::metrics_enabled() {
            rotsv_obs::counter("server.dies_completed").add(1);
            rotsv_obs::histogram("server.verdict_latency_seconds").observe(latency);
        }
        let line = render_line(vec![
            ("type".into(), Json::Str("verdict".into())),
            ("id".into(), self.client_id.clone()),
            ("job".into(), Json::Num(self.server_id as f64)),
            ("vdd".into(), Json::Num(self.spec.vdds[vdd_idx])),
            ("die".into(), Json::Num(sample as f64)),
            ("status".into(), Json::Str(status.into())),
            ("delta_t".into(), Self::opt_num(m.delta())),
            ("t1".into(), Self::opt_num(m.t1.period())),
            ("t2".into(), Self::opt_num(m.t2.period())),
            ("latency_s".into(), Json::Num(latency)),
        ]);
        let _ = self.tx.send(line);
        self.maybe_finish(&mut p);
    }

    fn record_failure(&self, vdd_idx: usize, sample: usize, reason: &str) {
        let mut p = self.progress.lock().expect("job progress poisoned");
        let idx = vdd_idx * self.spec.dies + sample;
        {
            let slot = &mut p.slots[idx];
            // One engine failure fails both phases of the slot; a slot
            // whose verdict already streamed cannot fail after the fact.
            if slot.failed || (slot.t1.is_some() && slot.t2.is_some()) {
                return;
            }
            slot.failed = true;
        }
        p.errors += 1;
        p.verdicts += 1;
        if rotsv_obs::metrics_enabled() {
            rotsv_obs::counter("server.units_failed").add(1);
        }
        let line = render_line(vec![
            ("type".into(), Json::Str("verdict".into())),
            ("id".into(), self.client_id.clone()),
            ("job".into(), Json::Num(self.server_id as f64)),
            ("vdd".into(), Json::Num(self.spec.vdds[vdd_idx])),
            ("die".into(), Json::Num(sample as f64)),
            ("status".into(), Json::Str("error".into())),
            ("reason".into(), Json::Str(reason.into())),
        ]);
        let _ = self.tx.send(line);
        self.maybe_finish(&mut p);
    }

    /// Emits the `done` trailer (with the run manifest) once every
    /// verdict has streamed, and releases the job from the tracker.
    fn maybe_finish(&self, p: &mut Progress) {
        if p.done_sent || p.verdicts < self.spec.verdict_count() {
            return;
        }
        p.done_sent = true;
        let inputs = ManifestInputs {
            experiment: format!("server_job_{}", self.server_id),
            fidelity: if self.spec.fast { "fast" } else { "full" }.into(),
            threads: self.threads,
            seed: Some(self.spec.seed),
            wall_seconds: self.submitted.elapsed().as_secs_f64(),
            // A job's "checks" are its verdicts: any classification is a
            // successful screen; only engine errors count as failures.
            checks_passed: (p.ok + p.stuck + p.reference_failed) as u64,
            checks_failed: p.errors as u64,
            solver_stats: Some(p.stats.to_json()),
        };
        let manifest = build_manifest(&inputs, &rotsv_obs::span_report(), rotsv_obs::dump_json());
        let line = render_line(vec![
            ("type".into(), Json::Str("done".into())),
            ("id".into(), self.client_id.clone()),
            ("job".into(), Json::Num(self.server_id as f64)),
            ("verdicts".into(), Json::Num(p.verdicts as f64)),
            ("ok".into(), Json::Num(p.ok as f64)),
            ("stuck".into(), Json::Num(p.stuck as f64)),
            (
                "reference_failed".into(),
                Json::Num(p.reference_failed as f64),
            ),
            ("errors".into(), Json::Num(p.errors as f64)),
            (
                "wall_s".into(),
                Json::Num(self.submitted.elapsed().as_secs_f64()),
            ),
            ("manifest".into(), manifest),
        ]);
        let _ = self.tx.send(line);
        self.tracker.job_done();
    }
}

/// Counts jobs in flight so graceful shutdown can wait until every
/// admitted job has flushed its verdicts and `done` trailer.
pub struct JobTracker {
    active: Mutex<usize>,
    idle: Condvar,
}

impl JobTracker {
    fn new() -> Self {
        Self {
            active: Mutex::new(0),
            idle: Condvar::new(),
        }
    }

    fn job_started(&self) {
        *self.active.lock().expect("job tracker poisoned") += 1;
    }

    fn job_done(&self) {
        let mut active = self.active.lock().expect("job tracker poisoned");
        *active -= 1;
        if *active == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut active = self.active.lock().expect("job tracker poisoned");
        while *active > 0 {
            active = self.idle.wait(active).expect("job tracker poisoned");
        }
    }
}

/// Server tunables. The defaults suit in-process tests and the CI
/// smoke; the `rotsv-server` binary maps flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; `127.0.0.1:0` picks a free port.
    pub addr: String,
    /// Transient lanes per engine session.
    pub lanes: usize,
    /// Engine worker threads (concurrent group sessions).
    pub workers: usize,
    /// Admission queue capacity in units.
    pub queue_cap: usize,
    /// Per-job die cap; larger submits are rejected outright.
    pub max_dies_per_job: usize,
    /// Prometheus snapshot path; enables the periodic flusher.
    pub metrics_out: Option<PathBuf>,
    /// Snapshot interval for the flusher, in milliseconds.
    pub metrics_interval_ms: u64,
    /// File to write the bound `host:port` to once listening (CI smoke
    /// discovers the ephemeral port through this).
    pub port_file: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            lanes: 8,
            workers: 2,
            queue_cap: 4096,
            max_dies_per_job: 1024,
            metrics_out: None,
            metrics_interval_ms: 1000,
            port_file: None,
        }
    }
}

impl ServerConfig {
    /// Parses `rotsv-server` command-line flags into a config.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or unparsable values.
    pub fn parse_args(args: &[String]) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--listen" => cfg.addr = value("--listen")?,
                "--lanes" => {
                    let v = value("--lanes")?;
                    cfg.lanes = if v == "auto" {
                        // Widest measured lane width: the daemon streams
                        // an unbounded population, so the large-N row of
                        // the benchmark-derived table applies
                        // (BENCH_solver.json in the working directory,
                        // else the built-in 16-lane default).
                        rotsv::mc::load_measured_tuning(std::path::Path::new("BENCH_solver.json"));
                        rotsv::mc::auto_lane_table()
                            .iter()
                            .map(|&(_, lanes)| lanes)
                            .max()
                            .unwrap_or(16)
                    } else {
                        v.parse().map_err(|e| format!("--lanes: {e}"))?
                    };
                }
                "--workers" => {
                    cfg.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?;
                }
                "--queue-cap" => {
                    cfg.queue_cap = value("--queue-cap")?
                        .parse()
                        .map_err(|e| format!("--queue-cap: {e}"))?;
                }
                "--max-dies" => {
                    cfg.max_dies_per_job = value("--max-dies")?
                        .parse()
                        .map_err(|e| format!("--max-dies: {e}"))?;
                }
                "--metrics-out" => cfg.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
                "--metrics-interval-ms" => {
                    cfg.metrics_interval_ms = value("--metrics-interval-ms")?
                        .parse()
                        .map_err(|e| format!("--metrics-interval-ms: {e}"))?;
                }
                "--port-file" => cfg.port_file = Some(PathBuf::from(value("--port-file")?)),
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if cfg.lanes == 0 || cfg.workers == 0 {
            return Err("--lanes and --workers must be at least 1".into());
        }
        Ok(cfg)
    }
}

/// State shared by the accept loop, connection handlers, and engine
/// workers.
pub struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) queue: AdmissionQueue,
    /// Process-wide symbolic cache, keyed by circuit topology: every
    /// engine session of every job reuses the same sparsity analyses.
    pub(crate) cache: Arc<SymbolicCache>,
    tracker: Arc<JobTracker>,
    next_job: AtomicU64,
    stop: Mutex<bool>,
    stop_cv: Condvar,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn new(config: ServerConfig) -> Self {
        let queue = AdmissionQueue::new(config.queue_cap);
        Self {
            config,
            queue,
            cache: Arc::new(SymbolicCache::new()),
            tracker: Arc::new(JobTracker::new()),
            next_job: AtomicU64::new(1),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
            conn_threads: Mutex::new(Vec::new()),
        }
    }

    /// Begins the graceful drain: no new admissions, workers exit once
    /// the queue empties, handlers and the accept loop wind down.
    pub fn begin_shutdown(&self) {
        self.queue.begin_shutdown();
        let mut stop = self.stop.lock().expect("stop flag poisoned");
        *stop = true;
        drop(stop);
        self.stop_cv.notify_all();
    }

    fn is_stopping(&self) -> bool {
        *self.stop.lock().expect("stop flag poisoned")
    }

    fn wait_stop(&self) {
        let mut stop = self.stop.lock().expect("stop flag poisoned");
        while !*stop {
            stop = self.stop_cv.wait(stop).expect("stop flag poisoned");
        }
    }
}

/// Handle on a running server instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    flusher: Option<PrometheusFlusher>,
}

impl Server {
    /// Binds, spawns the engine workers and the accept loop, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listen address or writing the
    /// port file.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        rotsv_obs::set_metrics(true);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        if let Some(path) = &config.port_file {
            std::fs::write(path, format!("{addr}\n"))?;
        }
        let flusher = config.metrics_out.as_ref().map(|path| {
            PrometheusFlusher::start(path, Duration::from_millis(config.metrics_interval_ms))
        });
        let shared = Arc::new(Shared::new(config));
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("rotsv-engine-{i}"))
                    .spawn(move || engine::worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("rotsv-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn accept loop")
        };
        Ok(Self {
            shared,
            addr,
            workers,
            accept: Some(accept),
            flusher,
        })
    }

    /// The bound listen address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins the graceful drain without blocking.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until a shutdown is requested (by [`Server::shutdown`] or
    /// a client's `shutdown` request), then drains: workers finish
    /// every queued unit, in-flight jobs flush their verdicts and
    /// `done` trailers, handlers and writers exit, and the final
    /// metrics snapshot lands.
    ///
    /// # Errors
    ///
    /// I/O errors from the final Prometheus snapshot.
    pub fn wait(mut self) -> std::io::Result<()> {
        self.shared.wait_stop();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers only exit once the queue is drained, and every unit
        // records before its session ends — so all jobs are done.
        self.shared.tracker.wait_idle();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns: Vec<_> = {
            let mut guard = self
                .shared
                .conn_threads
                .lock()
                .expect("connection registry poisoned");
            guard.drain(..).collect()
        };
        for h in conns {
            let _ = h.join();
        }
        if let Some(f) = self.flusher.take() {
            f.stop()?;
        }
        Ok(())
    }

    /// [`Server::shutdown`] followed by [`Server::wait`].
    ///
    /// # Errors
    ///
    /// I/O errors from the final Prometheus snapshot.
    pub fn stop(self) -> std::io::Result<()> {
        self.shutdown();
        self.wait()
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.is_stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared2 = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("rotsv-client".into())
                    .spawn(move || handle_client(&shared2, stream))
                    .expect("spawn client handler");
                shared
                    .conn_threads
                    .lock()
                    .expect("connection registry poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_client(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::Builder::new()
        .name("rotsv-writer".into())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            // Exits when the handler and every job holding a sender
            // clone are gone — verdicts in flight always flush first.
            for line in rx {
                if writeln!(out, "{line}").is_err() {
                    break;
                }
                let _ = out.flush();
            }
        })
        .expect("spawn writer");
    shared
        .conn_threads
        .lock()
        .expect("connection registry poisoned")
        .push(writer);

    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.is_stopping() {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_request(shared, trimmed, &tx);
                }
                line.clear();
            }
            // Timeout with a partial line buffered: keep it and retry.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

fn send(tx: &Sender<String>, members: Vec<(String, Json)>) {
    let _ = tx.send(render_line(members));
}

fn handle_request(shared: &Arc<Shared>, line: &str, tx: &Sender<String>) {
    match parse_request(line) {
        Err(reason) => send(
            tx,
            vec![
                ("type".into(), Json::Str("error".into())),
                ("reason".into(), Json::Str(reason)),
            ],
        ),
        Ok(Request::Ping) => send(tx, vec![("type".into(), Json::Str("pong".into()))]),
        Ok(Request::Metrics) => send(
            tx,
            vec![
                ("type".into(), Json::Str("metrics".into())),
                ("text".into(), Json::Str(render_prometheus())),
            ],
        ),
        Ok(Request::Shutdown) => {
            send(tx, vec![("type".into(), Json::Str("shutting_down".into()))]);
            shared.begin_shutdown();
        }
        Ok(Request::Submit { id, spec }) => handle_submit(shared, id, spec, tx),
    }
}

fn reject(tx: &Sender<String>, id: &Json, reason: String, depth: usize, cap: usize) {
    if rotsv_obs::metrics_enabled() {
        rotsv_obs::counter("server.jobs_rejected").add(1);
    }
    send(
        tx,
        vec![
            ("type".into(), Json::Str("rejected".into())),
            ("id".into(), id.clone()),
            ("reason".into(), Json::Str(reason)),
            ("queue_depth".into(), Json::Num(depth as f64)),
            ("queue_cap".into(), Json::Num(cap as f64)),
        ],
    );
}

fn handle_submit(shared: &Arc<Shared>, id: Json, spec: JobSpec, tx: &Sender<String>) {
    let cap = shared.config.queue_cap;
    if spec.dies > shared.config.max_dies_per_job {
        reject(
            tx,
            &id,
            format!(
                "job requests {} dies; per-job cap is {}",
                spec.dies, shared.config.max_dies_per_job
            ),
            shared.queue.depth(),
            cap,
        );
        return;
    }
    let server_id = shared.next_job.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(JobState::new(
        server_id,
        id.clone(),
        spec,
        shared.config.workers,
        tx.clone(),
        Arc::clone(&shared.tracker),
    ));
    let mut units = Vec::with_capacity(job.spec.unit_count());
    for vdd_idx in 0..job.spec.vdds.len() {
        let key = job.spec.group_key(vdd_idx);
        for sample in 0..job.spec.dies {
            for phase in [Phase::Enabled, Phase::Bypassed] {
                units.push((
                    key.clone(),
                    Unit {
                        job: Arc::clone(&job),
                        vdd_idx,
                        sample,
                        phase,
                    },
                ));
            }
        }
    }
    match shared.queue.admit(units) {
        Ok(depth) => {
            shared.tracker.job_started();
            if rotsv_obs::metrics_enabled() {
                rotsv_obs::counter("server.jobs_admitted").add(1);
            }
            send(
                tx,
                vec![
                    ("type".into(), Json::Str("admitted".into())),
                    ("id".into(), id),
                    ("job".into(), Json::Num(server_id as f64)),
                    ("units".into(), Json::Num(job.spec.unit_count() as f64)),
                    ("queue_depth".into(), Json::Num(depth as f64)),
                ],
            );
        }
        Err(AdmitError::Full { depth, cap }) => {
            reject(tx, &id, "queue full".into(), depth, cap);
        }
        Err(AdmitError::ShuttingDown) => {
            reject(tx, &id, "shutting down".into(), shared.queue.depth(), cap);
        }
    }
}
