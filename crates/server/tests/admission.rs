//! Admission-control and end-to-end behaviour of the screening daemon:
//! backpressure, per-job caps, graceful drain, and the bit-identity of
//! server-streamed verdicts against the standalone measurement path.

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use rotsv::variation::ProcessSpread;
use rotsv::{delta_t_population_with_engine, McEngine, TestBench};
use rotsv_obs::{validate_manifest, Json};
use rotsv_server::{Server, ServerConfig};

/// A tiny synchronous line-protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("set read timeout");
        let read_half = stream.try_clone().expect("clone stream");
        Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
    }

    fn read_doc(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        rotsv_obs::json::parse(line.trim()).expect("response must be valid JSON")
    }
}

fn ty(doc: &Json) -> &str {
    doc.get("type").and_then(Json::as_str).unwrap_or("")
}

fn small_config() -> ServerConfig {
    ServerConfig {
        lanes: 2,
        workers: 1,
        ..ServerConfig::default()
    }
}

#[test]
fn full_queue_rejects_whole_job() {
    // Capacity of 2 units cannot take a 1-die job (2 units) plus
    // anything; a 2-die job (4 units) must bounce atomically.
    let server = Server::start(ServerConfig {
        queue_cap: 2,
        ..small_config()
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr());
    client.send(r#"{"type":"submit","id":1,"n_segments":1,"dies":2}"#);
    let doc = client.read_doc();
    assert_eq!(ty(&doc), "rejected");
    let reason = doc.get("reason").and_then(Json::as_str).unwrap_or("");
    assert!(reason.contains("queue full"), "reason was {reason:?}");
    assert_eq!(doc.get("queue_cap").and_then(Json::as_f64), Some(2.0));
    server.stop().expect("clean shutdown");
}

#[test]
fn oversized_job_hits_die_cap() {
    let server = Server::start(ServerConfig {
        max_dies_per_job: 2,
        ..small_config()
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr());
    client.send(r#"{"type":"submit","id":7,"n_segments":1,"dies":3}"#);
    let doc = client.read_doc();
    assert_eq!(ty(&doc), "rejected");
    let reason = doc.get("reason").and_then(Json::as_str).unwrap_or("");
    assert!(reason.contains("per-job cap"), "reason was {reason:?}");
    server.stop().expect("clean shutdown");
}

#[test]
fn graceful_shutdown_flushes_in_flight_job() {
    let server = Server::start(small_config()).expect("server starts");
    let mut client = Client::connect(server.addr());
    client.send(r#"{"type":"submit","id":3,"n_segments":1,"dies":2,"seed":7}"#);
    let admitted = client.read_doc();
    assert_eq!(ty(&admitted), "admitted");
    // Begin the drain while the job's lanes are in flight: every
    // verdict and the manifest trailer must still stream out.
    server.shutdown();
    let mut verdicts = 0;
    let done = loop {
        let doc = client.read_doc();
        match ty(&doc) {
            "verdict" => {
                assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
                verdicts += 1;
            }
            "done" => break doc,
            other => panic!("unexpected response type {other:?}"),
        }
    };
    assert_eq!(verdicts, 2, "one verdict per die");
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(2.0));
    assert_eq!(done.get("errors").and_then(Json::as_f64), Some(0.0));
    let manifest = done.get("manifest").expect("done carries the manifest");
    let warnings = validate_manifest(manifest).expect("manifest validates");
    // Warnings (e.g. no tracing phases recorded) are acceptable;
    // validation errors are not.
    let _ = warnings;
    server.wait().expect("drain completes");
}

/// Submits one job and returns `(die index, ΔT)` for every verdict.
fn screen_job(addr: std::net::SocketAddr, id: u64, seed: u64, dies: usize) -> Vec<(usize, f64)> {
    let mut client = Client::connect(addr);
    client.send(&format!(
        r#"{{"type":"submit","id":{id},"n_segments":2,"dies":{dies},"seed":{seed}}}"#
    ));
    assert_eq!(ty(&client.read_doc()), "admitted");
    let mut deltas = Vec::new();
    loop {
        let doc = client.read_doc();
        match ty(&doc) {
            "verdict" => {
                assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
                let die = doc.get("die").and_then(Json::as_f64).expect("die index") as usize;
                let delta = doc.get("delta_t").and_then(Json::as_f64).expect("delta_t");
                deltas.push((die, delta));
            }
            "done" => break,
            other => panic!("unexpected response type {other:?}"),
        }
    }
    deltas.sort_by_key(|(die, _)| *die);
    deltas
}

#[test]
fn interleaved_clients_match_standalone_bit_for_bit() {
    // Two clients share one engine group (same topology and V_DD, the
    // group key ignores seed), so their dies interleave in the same
    // continuous batch. Composition independence says every die's ΔT
    // must still equal a standalone auto-engine run exactly.
    let server = Server::start(ServerConfig {
        lanes: 4,
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    const DIES: usize = 3;
    let a = std::thread::spawn(move || screen_job(addr, 1, 11, DIES));
    let b = std::thread::spawn(move || screen_job(addr, 2, 22, DIES));
    let got_a = a.join().expect("client A");
    let got_b = b.join().expect("client B");
    server.stop().expect("clean shutdown");

    let bench = TestBench::fast(2);
    let faults = vec![rotsv::tsv::TsvFault::None; 2];
    for (seed, got) in [(11, &got_a), (22, &got_b)] {
        let standalone = delta_t_population_with_engine(
            &bench,
            1.1,
            &faults,
            &[0],
            ProcessSpread::paper(),
            seed,
            DIES,
            McEngine::Auto,
        )
        .expect("standalone population");
        assert_eq!(standalone.deltas.len(), DIES, "all dies oscillate");
        assert_eq!(got.len(), DIES, "server streamed every die");
        for (die, (got_die, got_delta)) in got.iter().enumerate() {
            assert_eq!(*got_die, die);
            assert_eq!(
                got_delta.to_bits(),
                standalone.deltas[die].to_bits(),
                "die {die} of seed {seed}: server ΔT {} != standalone {}",
                got_delta,
                standalone.deltas[die]
            );
        }
    }
}
