//! Standard-cell delay characterization.
//!
//! A miniature library characterization flow: drive a cell with a step,
//! sweep the output load, and extract propagation delays. This is how
//! the gate strengths used by the ring-oscillator DfT were sanity-checked
//! against the Nangate-like expectations (X4 drives the 59 fF TSV load in
//! tens of picoseconds; X1 gates are a few picoseconds at FO1-ish loads).

use rotsv_mosfet::model::Nominal;
use rotsv_mosfet::tech45::DriveStrength;
use rotsv_spice::{Circuit, Edge, NodeId, SourceWaveform, SpiceError, TransientSpec};

use crate::builder::CellBuilder;

/// Which cell to characterize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CharCell {
    /// Inverter at a drive strength.
    Inverter(DriveStrength),
    /// Two-stage buffer at a drive strength.
    Buffer(DriveStrength),
    /// Tri-state buffer (enabled) at a drive strength.
    TriStateBuffer(DriveStrength),
    /// The skewed receiver buffer of the I/O cell.
    ReceiverBuffer,
}

impl CharCell {
    /// `true` when the cell inverts.
    pub fn inverting(self) -> bool {
        matches!(self, CharCell::Inverter(_))
    }
}

/// One characterization point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPoint {
    /// Output load, farads.
    pub load: f64,
    /// Rising-input propagation delay at V_DD/2, seconds.
    pub tplh_or_tphl: f64,
}

/// Delay table of one cell over a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayTable {
    /// Characterized cell.
    pub cell: CharCell,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Points in ascending load order.
    pub points: Vec<DelayPoint>,
}

impl DelayTable {
    /// Effective drive resistance estimated from the slope of delay vs
    /// load (Δdelay / ΔC, ohms); needs at least two points.
    ///
    /// # Panics
    ///
    /// Panics if the table has fewer than two points.
    pub fn drive_resistance(&self) -> f64 {
        assert!(self.points.len() >= 2, "need at least two load points");
        let first = self.points.first().expect("non-empty");
        let last = self.points.last().expect("non-empty");
        // Delay ≈ 0.69·R·C for an RC-dominated output.
        (last.tplh_or_tphl - first.tplh_or_tphl) / (0.69 * (last.load - first.load))
    }

    /// Zero-load (intrinsic) delay, seconds.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn intrinsic_delay(&self) -> f64 {
        self.points.first().expect("non-empty").tplh_or_tphl
    }
}

/// Characterizes `cell` at `vdd` across `loads` (farads, ascending).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `loads` is empty, `vdd` is not positive, or the cell output
/// fails to switch at some load.
pub fn characterize(cell: CharCell, vdd_v: f64, loads: &[f64]) -> Result<DelayTable, SpiceError> {
    assert!(!loads.is_empty(), "need at least one load point");
    assert!(vdd_v > 0.0 && vdd_v.is_finite(), "vdd must be positive");
    let mut points = Vec::with_capacity(loads.len());
    for &load in loads {
        let delay = single_delay(cell, vdd_v, load)?;
        points.push(DelayPoint {
            load,
            tplh_or_tphl: delay,
        });
    }
    Ok(DelayTable {
        cell,
        vdd: vdd_v,
        points,
    })
}

fn single_delay(cell: CharCell, vdd_v: f64, load: f64) -> Result<f64, SpiceError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(vdd_v));
    let input: NodeId = ckt.node("in");
    let t_step = 0.2e-9;
    ckt.add_vsource(
        input,
        Circuit::GROUND,
        SourceWaveform::step(0.0, vdd_v, t_step),
    );
    let out = ckt.node("out");
    if load > 0.0 {
        ckt.add_capacitor(out, Circuit::GROUND, load);
    }
    let mut vary = Nominal;
    let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
    match cell {
        CharCell::Inverter(d) => cells.inverter("dut", input, out, d),
        CharCell::Buffer(d) => cells.buffer("dut", input, out, d),
        CharCell::TriStateBuffer(d) => {
            let en = cells.circuit().node("en");
            let en_b = cells.circuit().node("enb");
            cells
                .circuit()
                .add_vsource(en, Circuit::GROUND, SourceWaveform::dc(vdd_v));
            cells
                .circuit()
                .add_vsource(en_b, Circuit::GROUND, SourceWaveform::dc(0.0));
            cells.tri_state_buffer("dut", input, out, en, en_b, d);
        }
        CharCell::ReceiverBuffer => cells.receiver_buffer("dut", input, out),
    }
    let spec = TransientSpec::new(3e-9, 1e-12).record(&[input, out]);
    let res = ckt.transient(&spec)?;
    let w_in = res.waveform(input);
    let w_out = res.waveform(out);
    let out_edge = if cell.inverting() {
        Edge::Falling
    } else {
        Edge::Rising
    };
    Ok(w_in
        .delay_to(
            &w_out,
            0.0,
            vdd_v / 2.0,
            Edge::Rising,
            vdd_v / 2.0,
            out_edge,
        )
        .unwrap_or_else(|| panic!("{cell:?} output did not switch at load {load}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOADS: [f64; 3] = [1e-15, 20e-15, 59e-15];

    #[test]
    fn delay_grows_with_load() {
        let t = characterize(CharCell::Buffer(DriveStrength::X4), 1.1, &LOADS).unwrap();
        assert!(t
            .points
            .windows(2)
            .all(|w| w[1].tplh_or_tphl > w[0].tplh_or_tphl));
    }

    #[test]
    fn stronger_drive_is_faster_into_big_loads() {
        let x1 = characterize(CharCell::Buffer(DriveStrength::X1), 1.1, &[59e-15]).unwrap();
        let x4 = characterize(CharCell::Buffer(DriveStrength::X4), 1.1, &[59e-15]).unwrap();
        assert!(
            x4.points[0].tplh_or_tphl < x1.points[0].tplh_or_tphl,
            "X4 {} !< X1 {}",
            x4.points[0].tplh_or_tphl,
            x1.points[0].tplh_or_tphl
        );
    }

    #[test]
    fn x4_drive_resistance_matches_calibration_target() {
        // The leakage stop threshold calibration relies on the X4 driver
        // presenting roughly 1 kΩ.
        let t = characterize(CharCell::TriStateBuffer(DriveStrength::X4), 1.1, &LOADS).unwrap();
        let r = t.drive_resistance();
        assert!((400.0..3000.0).contains(&r), "X4 tbuf R_drive = {r} Ω");
    }

    #[test]
    fn low_voltage_slows_everything() {
        let nom = characterize(CharCell::Inverter(DriveStrength::X1), 1.1, &[10e-15]).unwrap();
        let low = characterize(CharCell::Inverter(DriveStrength::X1), 0.8, &[10e-15]).unwrap();
        assert!(low.points[0].tplh_or_tphl > 1.5 * nom.points[0].tplh_or_tphl);
    }

    #[test]
    fn receiver_buffer_characterizes() {
        let t = characterize(CharCell::ReceiverBuffer, 1.1, &[1e-15, 10e-15]).unwrap();
        assert!(t.intrinsic_delay() > 0.0);
        assert!(t.intrinsic_delay() < 100e-12);
    }

    #[test]
    #[should_panic(expected = "at least one load")]
    fn empty_loads_rejected() {
        let _ = characterize(CharCell::Inverter(DriveStrength::X1), 1.1, &[]);
    }
}
