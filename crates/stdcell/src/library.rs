//! Cell metadata: kinds and areas.

use rotsv_num::units::SquareMicrons;
use std::fmt;

/// The standard cells this library provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter, unit drive.
    InvX1,
    /// Non-inverting buffer, unit drive.
    BufX1,
    /// Non-inverting buffer, 4× drive (the paper's TSV driver strength).
    BufX4,
    /// 2-input NAND, unit drive.
    Nand2X1,
    /// 2-input NOR, unit drive.
    Nor2X1,
    /// 2:1 transmission-gate multiplexer, unit drive.
    Mux2X1,
    /// Tri-state non-inverting buffer, 4× drive.
    TbufX4,
    /// D flip-flop with asynchronous reset (used by the measurement
    /// counter's gate-level area estimate).
    DffX1,
}

impl CellKind {
    /// All cell kinds, for iteration in tests and reports.
    pub const ALL: [CellKind; 8] = [
        CellKind::InvX1,
        CellKind::BufX1,
        CellKind::BufX4,
        CellKind::Nand2X1,
        CellKind::Nor2X1,
        CellKind::Mux2X1,
        CellKind::TbufX4,
        CellKind::DffX1,
    ];

    /// Library cell name.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::InvX1 => "INV_X1",
            CellKind::BufX1 => "BUF_X1",
            CellKind::BufX4 => "BUF_X4",
            CellKind::Nand2X1 => "NAND2_X1",
            CellKind::Nor2X1 => "NOR2_X1",
            CellKind::Mux2X1 => "MUX2_X1",
            CellKind::TbufX4 => "TBUF_X4",
            CellKind::DffX1 => "DFF_X1",
        }
    }

    /// Number of transistors in this library's implementation.
    pub fn transistor_count(self) -> usize {
        match self {
            CellKind::InvX1 => 2,
            CellKind::BufX1 | CellKind::BufX4 => 4,
            CellKind::Nand2X1 | CellKind::Nor2X1 => 4,
            CellKind::Mux2X1 => 10,
            CellKind::TbufX4 => 6,
            CellKind::DffX1 => 24,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Standard-cell area.
///
/// The MUX2 (3.75 µm²) and INV (1.41 µm²) values are the ones the paper
/// quotes from the Nangate 45 nm library for its Section IV-D area
/// analysis; the rest are representative values for the same library.
///
/// # Examples
///
/// ```
/// use rotsv_stdcell::library::{cell_area, CellKind};
///
/// assert_eq!(cell_area(CellKind::Mux2X1).value(), 3.75);
/// assert_eq!(cell_area(CellKind::InvX1).value(), 1.41);
/// ```
pub fn cell_area(kind: CellKind) -> SquareMicrons {
    SquareMicrons(match kind {
        CellKind::InvX1 => 1.41,
        CellKind::BufX1 => 1.86,
        CellKind::BufX4 => 2.93,
        CellKind::Nand2X1 => 1.86,
        CellKind::Nor2X1 => 1.86,
        CellKind::Mux2X1 => 3.75,
        CellKind::TbufX4 => 4.79,
        CellKind::DffX1 => 4.52,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_areas_are_exact() {
        assert_eq!(cell_area(CellKind::Mux2X1).value(), 3.75);
        assert_eq!(cell_area(CellKind::InvX1).value(), 1.41);
    }

    #[test]
    fn all_cells_have_positive_area_and_transistors() {
        for kind in CellKind::ALL {
            assert!(cell_area(kind).value() > 0.0, "{kind}");
            assert!(kind.transistor_count() >= 2, "{kind}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = CellKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellKind::ALL.len());
    }
}
