//! Transistor-level cell netlisting.

use rotsv_mosfet::model::VariationSource;
use rotsv_mosfet::tech45::{self, DriveStrength};
use rotsv_mosfet::{MosParams, Mosfet};
use rotsv_spice::{Circuit, NodeId};

/// Builds standard cells into a circuit.
///
/// Every transistor instantiated through the builder receives the next
/// process-variation delta from the attached
/// [`VariationSource`], so Monte-Carlo runs vary each
/// transistor independently exactly as the paper's HSPICE setup does.
pub struct CellBuilder<'a> {
    ckt: &'a mut Circuit,
    vdd: NodeId,
    vary: &'a mut dyn VariationSource,
    transistors: usize,
}

impl<'a> CellBuilder<'a> {
    /// Creates a builder targeting `ckt` with supply net `vdd`.
    pub fn new(ckt: &'a mut Circuit, vdd: NodeId, vary: &'a mut dyn VariationSource) -> Self {
        Self {
            ckt,
            vdd,
            vary,
            transistors: 0,
        }
    }

    /// Number of transistors instantiated so far.
    pub fn transistor_count(&self) -> usize {
        self.transistors
    }

    /// Access to the underlying circuit (e.g. to allocate nodes).
    pub fn circuit(&mut self) -> &mut Circuit {
        self.ckt
    }

    /// Adds one transistor with parasitic capacitances and a fresh
    /// variation delta.
    fn transistor(
        &mut self,
        name: String,
        params: MosParams,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
    ) {
        let params = params.with_delta(self.vary.next_delta());
        self.ckt.add_capacitor(g, s, params.c_gs());
        self.ckt.add_capacitor(g, d, params.c_gd());
        self.ckt.add_capacitor(d, b, params.c_db());
        self.ckt.add_capacitor(s, b, params.c_db());
        self.ckt
            .add_device(Box::new(Mosfet::new(name, params, d, g, s, b)));
        self.transistors += 1;
    }

    fn nmos(&mut self, name: String, drive: DriveStrength, d: NodeId, g: NodeId, s: NodeId) {
        self.transistor(name, tech45::nmos(drive), d, g, s, Circuit::GROUND);
    }

    fn pmos(&mut self, name: String, drive: DriveStrength, d: NodeId, g: NodeId, s: NodeId) {
        let vdd = self.vdd;
        self.transistor(name, tech45::pmos(drive), d, g, s, vdd);
    }

    /// First-stage drive for two-stage (buffer) cells.
    fn half_drive(drive: DriveStrength) -> DriveStrength {
        match drive {
            DriveStrength::X1 | DriveStrength::X2 => DriveStrength::X1,
            DriveStrength::X4 => DriveStrength::X2,
        }
    }

    /// CMOS inverter: `output = !input`.
    pub fn inverter(&mut self, name: &str, input: NodeId, output: NodeId, drive: DriveStrength) {
        let vdd = self.vdd;
        self.pmos(format!("{name}.mp"), drive, output, input, vdd);
        self.nmos(format!("{name}.mn"), drive, output, input, Circuit::GROUND);
    }

    /// Two-stage non-inverting buffer.
    pub fn buffer(&mut self, name: &str, input: NodeId, output: NodeId, drive: DriveStrength) {
        let mid = self.ckt.node(&format!("{name}.mid"));
        self.inverter(&format!("{name}.s1"), input, mid, Self::half_drive(drive));
        self.inverter(&format!("{name}.s2"), mid, output, drive);
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, name: &str, a: NodeId, b: NodeId, output: NodeId) {
        let vdd = self.vdd;
        let mid = self.ckt.node(&format!("{name}.mid"));
        self.pmos(format!("{name}.mpa"), DriveStrength::X1, output, a, vdd);
        self.pmos(format!("{name}.mpb"), DriveStrength::X1, output, b, vdd);
        self.nmos(format!("{name}.mna"), DriveStrength::X1, output, a, mid);
        self.nmos(
            format!("{name}.mnb"),
            DriveStrength::X1,
            mid,
            b,
            Circuit::GROUND,
        );
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, name: &str, a: NodeId, b: NodeId, output: NodeId) {
        let vdd = self.vdd;
        let mid = self.ckt.node(&format!("{name}.mid"));
        self.pmos(format!("{name}.mpa"), DriveStrength::X1, mid, a, vdd);
        self.pmos(format!("{name}.mpb"), DriveStrength::X1, output, b, mid);
        self.nmos(
            format!("{name}.mna"),
            DriveStrength::X1,
            output,
            a,
            Circuit::GROUND,
        );
        self.nmos(
            format!("{name}.mnb"),
            DriveStrength::X1,
            output,
            b,
            Circuit::GROUND,
        );
    }

    /// Transmission gate connecting `a` and `z`, conducting when
    /// `ctl` = 1 (and its complement `ctl_b` = 0).
    pub fn tgate(&mut self, name: &str, a: NodeId, z: NodeId, ctl: NodeId, ctl_b: NodeId) {
        self.nmos(format!("{name}.mn"), DriveStrength::X1, z, ctl, a);
        self.pmos(format!("{name}.mp"), DriveStrength::X1, z, ctl_b, a);
    }

    /// 2:1 multiplexer: `output = sel ? b : a`.
    ///
    /// Implemented like the Nangate MUX2_X1: a transmission-gate core
    /// followed by a two-inverter output buffer. The buffer matters for
    /// the ring-oscillator DfT — it keeps every bypass path an active,
    /// regenerating stage, so even an all-bypassed loop has enough gain
    /// stages to oscillate.
    pub fn mux2(&mut self, name: &str, a: NodeId, b: NodeId, sel: NodeId, output: NodeId) {
        let sel_b = self.ckt.node(&format!("{name}.selb"));
        let core = self.ckt.node(&format!("{name}.core"));
        self.inverter(&format!("{name}.si"), sel, sel_b, DriveStrength::X1);
        self.tgate(&format!("{name}.ta"), a, core, sel_b, sel);
        self.tgate(&format!("{name}.tb"), b, core, sel, sel_b);
        self.buffer(&format!("{name}.ob"), core, output, DriveStrength::X1);
    }

    /// Pull-down width boost of the tri-state output driver.
    ///
    /// I/O drivers are commonly sized with a stronger pull-down network;
    /// with symmetric strength the leakage fault's faster discharge would
    /// cancel its slower charge in the oscillation period, where both the
    /// paper's driver and real I/O cells show the charging penalty
    /// dominating.
    const TBUF_PULLDOWN_BOOST: f64 = 2.0;

    /// Tri-state non-inverting buffer: drives `output = input` when
    /// `en` = 1 (`en_b` = 0); output floats when disabled.
    ///
    /// The complement `en_b` is taken as an input so a single enable
    /// inverter can be shared by many drivers — as the paper's DfT does
    /// with the global OE signal.
    pub fn tri_state_buffer(
        &mut self,
        name: &str,
        input: NodeId,
        output: NodeId,
        en: NodeId,
        en_b: NodeId,
        drive: DriveStrength,
    ) {
        let vdd = self.vdd;
        let inb = self.ckt.node(&format!("{name}.inb"));
        let pm = self.ckt.node(&format!("{name}.pm"));
        let nm = self.ckt.node(&format!("{name}.nm"));
        self.inverter(&format!("{name}.s1"), input, inb, Self::half_drive(drive));
        // Tri-state inverting output stage on the internal complement.
        let np = tech45::pmos(drive);
        let nn = tech45::nmos(drive);
        let nn = nn.with_width(nn.w * Self::TBUF_PULLDOWN_BOOST);
        self.transistor(format!("{name}.mpi"), np, pm, inb, vdd, vdd);
        self.transistor(format!("{name}.mpe"), np, output, en_b, pm, vdd);
        self.transistor(format!("{name}.mne"), nn, output, en, nm, Circuit::GROUND);
        self.transistor(
            format!("{name}.mni"),
            nn,
            nm,
            inb,
            Circuit::GROUND,
            Circuit::GROUND,
        );
    }

    /// Receiver buffer of a bidirectional I/O cell: a non-inverting
    /// buffer whose first stage is skewed (strong PMOS, weak NMOS) for a
    /// switching threshold above V_DD/2.
    ///
    /// A high receiver threshold is what makes leakage faults visible in
    /// the oscillation period: the leaky TSV's degraded high level
    /// approaches the threshold slowly, so the rising-edge penalty grows
    /// much faster than the falling-edge speed-up.
    pub fn receiver_buffer(&mut self, name: &str, input: NodeId, output: NodeId) {
        let vdd = self.vdd;
        let mid = self.ckt.node(&format!("{name}.mid"));
        let p = tech45::pmos(DriveStrength::X2);
        let n = tech45::nmos(DriveStrength::X1);
        let n = n.with_width(n.w * 0.7);
        self.transistor(format!("{name}.s1.mp"), p, mid, input, vdd, vdd);
        self.transistor(
            format!("{name}.s1.mn"),
            n,
            mid,
            input,
            Circuit::GROUND,
            Circuit::GROUND,
        );
        self.inverter(&format!("{name}.s2"), mid, output, DriveStrength::X1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotsv_mosfet::model::Nominal;
    use rotsv_spice::{DcOpSpec, SourceWaveform, TransientSpec};

    const VDD: f64 = 1.1;

    /// Builds a circuit with a VDD rail and the given logic inputs driven
    /// by DC sources, runs the cell-under-test closure, and returns the DC
    /// voltage of the output node.
    fn dc_output(
        inputs: &[f64],
        build: impl FnOnce(&mut CellBuilder<'_>, &[NodeId], NodeId),
    ) -> f64 {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(VDD));
        let in_nodes: Vec<NodeId> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let n = ckt.node(&format!("in{i}"));
                ckt.add_vsource(n, Circuit::GROUND, SourceWaveform::dc(v));
                n
            })
            .collect();
        let out = ckt.node("out");
        let mut vary = Nominal;
        let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
        build(&mut cells, &in_nodes, out);
        ckt.dcop(&DcOpSpec::default()).unwrap().voltage(out)
    }

    fn is_high(v: f64) -> bool {
        v > 0.9 * VDD
    }

    fn is_low(v: f64) -> bool {
        v < 0.1 * VDD
    }

    #[test]
    fn inverter_inverts() {
        let v0 = dc_output(&[0.0], |c, i, o| {
            c.inverter("u", i[0], o, DriveStrength::X1)
        });
        let v1 = dc_output(&[VDD], |c, i, o| {
            c.inverter("u", i[0], o, DriveStrength::X1)
        });
        assert!(is_high(v0), "inv(0) = {v0}");
        assert!(is_low(v1), "inv(1) = {v1}");
    }

    #[test]
    fn buffer_is_non_inverting() {
        for drive in [DriveStrength::X1, DriveStrength::X4] {
            let v0 = dc_output(&[0.0], |c, i, o| c.buffer("u", i[0], o, drive));
            let v1 = dc_output(&[VDD], |c, i, o| c.buffer("u", i[0], o, drive));
            assert!(is_low(v0), "buf(0) = {v0}");
            assert!(is_high(v1), "buf(1) = {v1}");
        }
    }

    #[test]
    fn nand2_truth_table() {
        for (a, b, expect_high) in [
            (0.0, 0.0, true),
            (0.0, VDD, true),
            (VDD, 0.0, true),
            (VDD, VDD, false),
        ] {
            let v = dc_output(&[a, b], |c, i, o| c.nand2("u", i[0], i[1], o));
            assert_eq!(is_high(v), expect_high, "nand({a},{b}) = {v}");
            assert_eq!(is_low(v), !expect_high, "nand({a},{b}) = {v}");
        }
    }

    #[test]
    fn nor2_truth_table() {
        for (a, b, expect_high) in [
            (0.0, 0.0, true),
            (0.0, VDD, false),
            (VDD, 0.0, false),
            (VDD, VDD, false),
        ] {
            let v = dc_output(&[a, b], |c, i, o| c.nor2("u", i[0], i[1], o));
            assert_eq!(is_high(v), expect_high, "nor({a},{b}) = {v}");
        }
    }

    #[test]
    fn mux2_selects_inputs() {
        // a = 1, b = 0: sel 0 -> a (high); sel 1 -> b (low).
        let v_sel0 = dc_output(&[VDD, 0.0, 0.0], |c, i, o| c.mux2("u", i[0], i[1], i[2], o));
        let v_sel1 = dc_output(&[VDD, 0.0, VDD], |c, i, o| c.mux2("u", i[0], i[1], i[2], o));
        assert!(is_high(v_sel0), "mux sel=0 gave {v_sel0}");
        assert!(is_low(v_sel1), "mux sel=1 gave {v_sel1}");
    }

    #[test]
    fn tristate_drives_when_enabled() {
        for (input, expect_high) in [(VDD, true), (0.0, false)] {
            let v = dc_output(&[input, VDD, 0.0], |c, i, o| {
                c.tri_state_buffer("u", i[0], o, i[1], i[2], DriveStrength::X4)
            });
            assert_eq!(is_high(v), expect_high, "tbuf({input}) = {v}");
        }
    }

    #[test]
    fn tristate_releases_when_disabled() {
        // Disabled driver with input high; a 1 MΩ pull-down must win.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(VDD));
        let input = ckt.node("in");
        ckt.add_vsource(input, Circuit::GROUND, SourceWaveform::dc(VDD));
        let en = ckt.node("en");
        let en_b = ckt.node("enb");
        ckt.add_vsource(en, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_vsource(en_b, Circuit::GROUND, SourceWaveform::dc(VDD));
        let out = ckt.node("out");
        ckt.add_resistor(out, Circuit::GROUND, 1e6);
        let mut vary = Nominal;
        let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
        cells.tri_state_buffer("u", input, out, en, en_b, DriveStrength::X4);
        let v = ckt.dcop(&DcOpSpec::default()).unwrap().voltage(out);
        assert!(v < 0.05, "disabled driver leaks: out = {v}");
    }

    #[test]
    fn transistor_counts_match_library() {
        use crate::library::CellKind;
        let count = |build: &dyn Fn(&mut CellBuilder<'_>, NodeId, NodeId)| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let a = ckt.node("a");
            let o = ckt.node("o");
            let mut vary = Nominal;
            let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
            build(&mut cells, a, o);
            cells.transistor_count()
        };
        assert_eq!(
            count(&|c, a, o| c.inverter("u", a, o, DriveStrength::X1)),
            CellKind::InvX1.transistor_count()
        );
        assert_eq!(
            count(&|c, a, o| c.buffer("u", a, o, DriveStrength::X4)),
            CellKind::BufX4.transistor_count()
        );
        assert_eq!(
            count(&|c, a, o| c.nand2("u", a, a, o)),
            CellKind::Nand2X1.transistor_count()
        );
        assert_eq!(
            count(&|c, a, o| c.mux2("u", a, a, a, o)),
            CellKind::Mux2X1.transistor_count()
        );
        assert_eq!(
            count(&|c, a, o| c.tri_state_buffer("u", a, o, a, a, DriveStrength::X4)),
            CellKind::TbufX4.transistor_count()
        );
    }

    #[test]
    fn three_stage_ring_oscillates_at_plausible_period() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(VDD));
        let n: Vec<NodeId> = (0..3).map(|i| ckt.node(&format!("s{i}"))).collect();
        let mut vary = Nominal;
        let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
        for i in 0..3 {
            cells.inverter(&format!("i{i}"), n[i], n[(i + 1) % 3], DriveStrength::X1);
        }
        let spec = TransientSpec::new(3e-9, 0.5e-12)
            .record(&[n[0]])
            .stop_after_rising(n[0], VDD / 2.0, 12);
        let res = ckt.transient(&spec).unwrap();
        let m = res
            .waveform(n[0])
            .period(VDD / 2.0, 3)
            .expect("ring must oscillate");
        // 3 stages of FO1 inverters: tens of picoseconds per period.
        assert!(
            m.mean > 5e-12 && m.mean < 500e-12,
            "period {} s out of range",
            m.mean
        );
        assert!(m.jitter < 0.02 * m.mean, "jitter {} too large", m.jitter);
    }

    #[test]
    fn buffer_delay_increases_with_load() {
        // BUF_X4 driving 59 fF (a fault-free TSV) vs no load.
        let delay_with_cap = |cap: f64| -> f64 {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(VDD));
            let input = ckt.node("in");
            ckt.add_vsource(
                input,
                Circuit::GROUND,
                SourceWaveform::step(0.0, VDD, 0.2e-9),
            );
            let out = ckt.node("out");
            if cap > 0.0 {
                ckt.add_capacitor(out, Circuit::GROUND, cap);
            }
            let mut vary = Nominal;
            let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
            cells.buffer("u", input, out, DriveStrength::X4);
            let spec = TransientSpec::new(1.5e-9, 0.5e-12).record(&[input, out]);
            let res = ckt.transient(&spec).unwrap();
            let win = res.waveform(input);
            let wout = res.waveform(out);
            win.delay_to(
                &wout,
                0.0,
                VDD / 2.0,
                rotsv_spice::Edge::Rising,
                VDD / 2.0,
                rotsv_spice::Edge::Rising,
            )
            .expect("output must switch")
        };
        let d0 = delay_with_cap(0.0);
        let d59 = delay_with_cap(59e-15);
        assert!(d59 > d0 + 10e-12, "d0 = {d0}, d59 = {d59}");
        // Loaded delay should be on the order of tens of ps, not ns.
        assert!(d59 < 500e-12, "d59 = {d59}");
    }
}
