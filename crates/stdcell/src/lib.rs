#![warn(missing_docs)]

//! Transistor-level standard cells in the style of the Nangate 45 nm Open
//! Cell Library.
//!
//! The paper builds its ring-oscillator DfT exclusively from standard
//! cells — that is the "non-invasive" claim: no custom analog structures,
//! only inverters, buffers, multiplexers and tri-state drivers that any
//! library provides. This crate instantiates those cells transistor by
//! transistor into a [`rotsv_spice::Circuit`], pulling a process-variation
//! delta for every transistor from a
//! [`rotsv_mosfet::VariationSource`].
//!
//! * [`builder::CellBuilder`] — netlist construction of INV, BUF, NAND2,
//!   NOR2, MUX2 (transmission-gate) and TBUF (tri-state buffer) cells,
//! * [`library`] — cell area data; the MUX2 (3.75 µm²) and INV (1.41 µm²)
//!   figures are the ones the paper's Section IV-D area analysis uses.
//!
//! # Examples
//!
//! Build and simulate a three-stage ring oscillator:
//!
//! ```
//! use rotsv_mosfet::model::Nominal;
//! use rotsv_spice::{Circuit, SourceWaveform, TransientSpec};
//! use rotsv_stdcell::builder::CellBuilder;
//! use rotsv_mosfet::tech45::DriveStrength;
//!
//! # fn main() -> Result<(), rotsv_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! ckt.add_vsource(vdd, Circuit::GROUND, SourceWaveform::dc(1.1));
//! let n: Vec<_> = (0..3).map(|i| ckt.node(&format!("s{i}"))).collect();
//! let mut vary = Nominal;
//! let mut cells = CellBuilder::new(&mut ckt, vdd, &mut vary);
//! cells.inverter("i0", n[0], n[1], DriveStrength::X1);
//! cells.inverter("i1", n[1], n[2], DriveStrength::X1);
//! cells.inverter("i2", n[2], n[0], DriveStrength::X1);
//! let spec = TransientSpec::new(2e-9, 1e-12).record(&[n[0]]);
//! let res = ckt.transient(&spec)?;
//! let period = res.waveform(n[0]).period(0.55, 2);
//! assert!(period.is_some(), "ring should oscillate");
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod characterize;
pub mod library;

pub use builder::CellBuilder;
pub use characterize::{characterize, CharCell, DelayTable};
pub use library::{cell_area, CellKind};
