#![warn(missing_docs)]

//! A self-contained, offline subset of the [proptest](https://docs.rs/proptest)
//! API.
//!
//! The build environment of this workspace has no access to crates.io, so
//! the real `proptest` crate cannot be resolved. This shim implements the
//! small surface the workspace actually uses — the `proptest!` macro with
//! `value in strategy` bindings, numeric range strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros — with deterministic pseudo-random generation
//! derived from the test name and case index.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its inputs and panics;
//! * deterministic (no `PROPTEST_CASES`/persistence machinery);
//! * only the strategy forms used in this repository are implemented.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // In a test module this would carry `#[test]`.
//!     fn addition_commutes(a in 0.0..1.0f64, b in 0.0..1.0f64) {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-15);
//!     }
//! }
//! addition_commutes();
//! ```

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic uniform generator used to drive strategies.
///
/// SplitMix64: tiny, statistically fine for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            state: seed ^ 0x1234_5678_9ABC_DEF0,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform deviate in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Hashes a test name into a stable seed (FNV-1a).
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i32, i64, u8, u16);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // next_f64 is half-open; fold a coin flip in so the upper bound is
        // actually reachable.
        if rng.next_u64().is_multiple_of(257) {
            hi
        } else {
            lo + (hi - lo) * rng.next_f64()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with random length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
///
/// Panics with the formatted message; the harness prepends the failing
/// inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::seed_from(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        concat!(
                            "proptest ", stringify!($name), ": case {} failed with inputs:",
                            $(" ", stringify!($arg), " = {:?}",)+
                        ),
                        case, $(&$arg),+
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// The prelude: everything a test file needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};

    /// Mirror of proptest's `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn f64_range_respected(x in 1.5..9.25f64) {
            prop_assert!((1.5..9.25).contains(&x));
        }

        #[test]
        fn usize_range_respected(n in 3usize..17) {
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn inclusive_range_respected(x in 0.0..=1.0f64) {
            prop_assert!((0.0..=1.0).contains(&x));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(-1.0..1.0f64, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::seed_from(seed_for_case());
        let mut b = TestRng::seed_from(seed_for_case());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    fn seed_for_case() -> u64 {
        crate::seed_for("some::test", 3)
    }

    #[test]
    fn different_cases_use_different_seeds() {
        assert_ne!(crate::seed_for("t", 0), crate::seed_for("t", 1));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
    }
}
