//! Linear-feedback shift register measurement alternative.
//!
//! The paper notes that an LFSR "requires less gates for the same upper
//! limit on the count; however, a look-up table is needed to determine
//! the oscillation frequency corresponding to the current LFSR state."
//! This module implements a maximal-length Fibonacci LFSR, the decode
//! table, and the gate-count comparison against the binary counter.

use std::collections::HashMap;

use crate::logic::Bit;
use crate::sim::{DigitalSim, Netlist, SignalId};

/// Maximal-length feedback taps (1-indexed bit positions) for register
/// widths 2..=24, from the standard XOR-form tables.
const MAX_LENGTH_TAPS: [(u32, &[u32]); 23] = [
    (2, &[2, 1]),
    (3, &[3, 2]),
    (4, &[4, 3]),
    (5, &[5, 3]),
    (6, &[6, 5]),
    (7, &[7, 6]),
    (8, &[8, 6, 5, 4]),
    (9, &[9, 5]),
    (10, &[10, 7]),
    (11, &[11, 9]),
    (12, &[12, 11, 10, 4]),
    (13, &[13, 12, 11, 8]),
    (14, &[14, 13, 12, 2]),
    (15, &[15, 14]),
    (16, &[16, 15, 13, 4]),
    (17, &[17, 14]),
    (18, &[18, 11]),
    (19, &[19, 18, 17, 14]),
    (20, &[20, 17]),
    (21, &[21, 19]),
    (22, &[22, 21]),
    (23, &[23, 18]),
    (24, &[24, 23, 22, 17]),
];

/// Returns the maximal-length taps for width `bits`.
///
/// # Panics
///
/// Panics if `bits` is outside `2..=24`.
pub fn maximal_taps(bits: u32) -> &'static [u32] {
    MAX_LENGTH_TAPS
        .iter()
        .find(|(n, _)| *n == bits)
        .map(|(_, taps)| *taps)
        .unwrap_or_else(|| panic!("no tap table for {bits}-bit LFSR (supported: 2..=24)"))
}

/// A Fibonacci LFSR with maximal-length taps.
///
/// The all-ones state is the reset state (all-zeros is the lock-up state
/// of a XOR LFSR and is never entered from a nonzero state).
#[derive(Debug, Clone)]
pub struct Lfsr {
    bits: u32,
    taps: &'static [u32],
    state: u64,
}

impl Lfsr {
    /// Creates an LFSR of the given width in the reset (all-ones) state.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=24`.
    pub fn new(bits: u32) -> Self {
        Self {
            bits,
            taps: maximal_taps(bits),
            state: (1u64 << bits) - 1,
        }
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Current register state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Resets to the all-ones state.
    pub fn reset(&mut self) {
        self.state = (1u64 << self.bits) - 1;
    }

    /// One clock: shifts left by one, inserting the XOR of the taps.
    pub fn tick(&mut self) {
        let fb = self
            .taps
            .iter()
            .fold(0u64, |acc, &tap| acc ^ (self.state >> (tap - 1) & 1));
        self.state = ((self.state << 1) | fb) & ((1 << self.bits) - 1);
    }

    /// The sequence period: a maximal-length n-bit LFSR cycles through
    /// 2ⁿ − 1 states.
    pub fn sequence_length(&self) -> u64 {
        (1 << self.bits) - 1
    }

    /// Builds the state→count lookup table the test equipment uses to
    /// decode a shifted-out signature into a cycle count.
    pub fn decode_table(&self) -> HashMap<u64, u64> {
        let mut lfsr = Lfsr::new(self.bits);
        let mut table = HashMap::with_capacity(self.sequence_length() as usize);
        for k in 0..self.sequence_length() {
            table.insert(lfsr.state, k);
            lfsr.tick();
        }
        table
    }
}

/// Gate-level LFSR for cross-checking the behavioral model.
#[derive(Debug)]
pub struct GateLevelLfsr {
    sim: DigitalSim,
    q: Vec<SignalId>,
    bits: u32,
}

impl GateLevelLfsr {
    /// Builds the gate-level register (XOR feedback, set-to-ones reset is
    /// emulated by construction).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=24`.
    pub fn build(bits: u32) -> Self {
        let taps = maximal_taps(bits);
        let n = bits as usize;
        let mut nl = Netlist::new();
        let q = nl.signals(n);
        // Feedback = XOR of tap outputs.
        let mut fb = q[(taps[0] - 1) as usize];
        for &t in &taps[1..] {
            let z = nl.signal();
            nl.xor_gate(fb, q[(t - 1) as usize], z);
            fb = z;
        }
        // Shift left: d[0] = fb, d[i] = q[i-1].
        nl.dff(fb, q[0], None);
        for i in 1..n {
            nl.dff(q[i - 1], q[i], None);
        }
        let mut sim = DigitalSim::new(nl);
        // Initialize to all ones by direct drive (models the async set).
        for &s in &q {
            sim.set(s, Bit::H);
        }
        Self { sim, q, bits }
    }

    /// Current state as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the state contains an unknown bit.
    pub fn state(&self) -> u64 {
        let bits: Vec<Bit> = self.q.iter().map(|&s| self.sim.get(s)).collect();
        crate::logic::bits_to_u64(&bits).expect("LFSR state defined after init")
    }

    /// One clock edge.
    pub fn tick(&mut self) {
        self.sim.clock();
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

/// Gate-cost comparison of the two measurement structures, in equivalent
/// 2-input gates (DFF counted as `dff_cost`).
///
/// The binary counter needs an XOR + AND per bit (increment logic); the
/// LFSR needs only its tap XORs — the paper's "less gates for the same
/// upper limit" observation.
pub fn gate_cost_comparison(bits: u32, dff_cost: u32) -> (u32, u32) {
    let counter = bits * dff_cost + bits * 2; // XOR + carry AND per bit
    let taps = maximal_taps(bits).len() as u32;
    let lfsr = bits * dff_cost + (taps - 1); // XOR tree only
    (counter, lfsr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_length_sequence_for_small_widths() {
        for bits in [3u32, 4, 5, 8, 10] {
            let mut lfsr = Lfsr::new(bits);
            let start = lfsr.state();
            let mut seen = std::collections::HashSet::new();
            loop {
                assert!(seen.insert(lfsr.state()), "state repeated early");
                lfsr.tick();
                assert_ne!(lfsr.state(), 0, "lock-up state entered");
                if lfsr.state() == start {
                    break;
                }
            }
            assert_eq!(
                seen.len() as u64,
                lfsr.sequence_length(),
                "{bits}-bit LFSR not maximal"
            );
        }
    }

    #[test]
    fn decode_table_inverts_tick_count() {
        let lfsr = Lfsr::new(8);
        let table = lfsr.decode_table();
        let mut probe = Lfsr::new(8);
        for k in 0..200 {
            assert_eq!(table[&probe.state()], k);
            probe.tick();
        }
        assert_eq!(table.len() as u64, lfsr.sequence_length());
    }

    #[test]
    fn gate_level_tracks_behavioral() {
        let mut gl = GateLevelLfsr::build(6);
        let mut bh = Lfsr::new(6);
        for _ in 0..100 {
            assert_eq!(gl.state(), bh.state());
            gl.tick();
            bh.tick();
        }
    }

    #[test]
    fn reset_state_is_all_ones() {
        let mut l = Lfsr::new(5);
        l.tick();
        l.tick();
        l.reset();
        assert_eq!(l.state(), 0b11111);
    }

    #[test]
    fn lfsr_needs_fewer_gates_than_counter() {
        for bits in [8u32, 10, 16] {
            let (counter, lfsr) = gate_cost_comparison(bits, 6);
            assert!(
                lfsr < counter,
                "{bits}-bit: LFSR {lfsr} !< counter {counter}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no tap table")]
    fn unsupported_width_panics() {
        let _ = Lfsr::new(40);
    }
}
