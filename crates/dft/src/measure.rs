//! Quantization-error analysis of the counter measurement
//! (Section IV-C of the paper).
//!
//! With a reference window `t` and true period `T`, the count is bounded
//! by `t/T − 1 ≤ c ≤ t/T + 1` (reset/stop can each clip or add a partial
//! cycle). The resulting period estimate `T' = t/c` errs by at most
//!
//! * `E⁺ = T² / (t − T)` when a cycle is missed,
//! * `E⁻ = T² / (t + T)` when an extra cycle is counted,
//!
//! both ≈ `T²/t` for `t ≫ T`. The paper's sizing example: `T = 5 ns`,
//! target `E = 0.005 ns` ⇒ `t ≥ 5 µs`, count ≈ 1000 ⇒ a 10-bit counter.

/// Count bounds `(t/T − 1, t/T + 1)` clamped at zero.
///
/// # Panics
///
/// Panics if `period` or `window` is not positive and finite.
pub fn count_bounds(period: f64, window: f64) -> (f64, f64) {
    check(period, window);
    let ratio = window / period;
    ((ratio - 1.0).max(0.0), ratio + 1.0)
}

/// Exact worst-case errors `(E⁻, E⁺)` of the period estimate.
///
/// `E⁺` is the overestimate when the counter misses a cycle, `E⁻` the
/// underestimate when it counts an extra one.
///
/// # Panics
///
/// Panics if inputs are not positive, or if `window <= period` (the
/// estimate is meaningless with fewer than one full cycle).
pub fn error_bounds(period: f64, window: f64) -> (f64, f64) {
    check(period, window);
    assert!(
        window > period,
        "window must exceed the period for a meaningful count"
    );
    let e_minus = period * period / (window + period);
    let e_plus = period * period / (window - period);
    (e_minus, e_plus)
}

/// The approximate symmetric error bound `E ≈ T²/t`.
///
/// # Panics
///
/// Panics if inputs are not positive and finite.
pub fn max_error(period: f64, window: f64) -> f64 {
    check(period, window);
    period * period / window
}

/// Window length needed so the measurement error stays below
/// `target_error`: `t ≥ T² / E`.
///
/// # Panics
///
/// Panics if inputs are not positive and finite.
pub fn required_window(period: f64, target_error: f64) -> f64 {
    check(period, target_error);
    period * period / target_error
}

/// Counter bit width needed to hold the maximum count of a `window`-long
/// measurement of periods down to `min_period`.
///
/// # Panics
///
/// Panics if inputs are not positive and finite.
pub fn required_bits(window: f64, min_period: f64) -> u32 {
    check(min_period, window);
    let max_count = window / min_period + 1.0;
    (max_count.log2().ceil() as u32).max(1)
}

fn check(a: f64, b: f64) {
    assert!(a > 0.0 && a.is_finite(), "value must be positive, got {a}");
    assert!(b > 0.0 && b.is_finite(), "value must be positive, got {b}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::GatedCounter;

    /// The paper's worked example: T = 5 ns (200 MHz), E = 0.005 ns
    /// ⇒ t = 5 µs, count 1000, 10-bit counter.
    #[test]
    fn paper_sizing_example() {
        let period = 5e-9;
        let target = 0.005e-9;
        let window = required_window(period, target);
        assert!((window - 5e-6).abs() < 1e-12, "window {window}");
        let count = window / period;
        assert!((count - 1000.0).abs() < 1e-6);
        assert_eq!(required_bits(window, period), 10);
    }

    #[test]
    fn error_bounds_bracket_the_approximation() {
        let (e_minus, e_plus) = error_bounds(5e-9, 5e-6);
        let e = max_error(5e-9, 5e-6);
        assert!(e_minus < e && e < e_plus);
        // For t >> T all three agree to first order.
        assert!((e_minus - e).abs() / e < 2e-3);
        assert!((e_plus - e).abs() / e < 2e-3);
    }

    /// Simulated measurements over all phases stay within the worst-case
    /// error bounds — theory and sampling model agree.
    #[test]
    fn simulated_error_within_bounds() {
        let period = 7.3e-9;
        let window = 2e-6;
        let g = GatedCounter::new(window, 16);
        let (e_minus, e_plus) = error_bounds(period, window);
        for k in 0..200 {
            let phase = period * k as f64 / 200.0;
            let est = g.measure(period, phase).expect("oscillating");
            let err = est - period;
            assert!(
                err <= e_plus * (1.0 + 1e-9) && err >= -e_minus * (1.0 + 1e-9),
                "phase {phase}: err {err} outside [{}, {}]",
                -e_minus,
                e_plus
            );
        }
    }

    #[test]
    fn longer_window_shrinks_error() {
        let e1 = max_error(5e-9, 1e-6);
        let e2 = max_error(5e-9, 10e-6);
        assert!((e1 / e2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn count_bounds_clamp_at_zero() {
        let (lo, hi) = count_bounds(10e-9, 5e-9);
        assert_eq!(lo, 0.0);
        assert!(hi > 1.0);
    }

    #[test]
    #[should_panic(expected = "window must exceed")]
    fn error_bounds_reject_short_window() {
        let _ = error_bounds(5e-9, 4e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_period_rejected() {
        let _ = max_error(-1.0, 1e-6);
    }

    #[test]
    fn required_bits_is_monotone_in_window() {
        assert!(required_bits(1e-6, 5e-9) <= required_bits(100e-6, 5e-9));
        assert_eq!(required_bits(5e-6, 5e-9), 10);
    }
}
