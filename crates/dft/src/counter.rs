//! The gated binary counter measuring oscillation periods.
//!
//! The oscillator output clocks an n-bit binary counter between a reset
//! and a stop signal generated from a reference clock; the final count
//! `c` over a window `t` gives the period estimate `T' = t / c`
//! (Section IV-C of the paper). After the window the counter is
//! reconfigured as a shift register and the signature is shifted out to
//! the test equipment.

use crate::logic::{bits_to_u64, Bit};
use crate::sim::{DigitalSim, Netlist, SignalId};

/// Behavioral n-bit binary counter (wraps at 2ⁿ).
#[derive(Debug, Clone)]
pub struct BinaryCounter {
    bits: u32,
    count: u64,
}

impl BinaryCounter {
    /// Creates a counter with `bits` bits, initialized to zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    pub fn new(bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "bits must be in 1..=63");
        Self { bits, count: 0 }
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// One clock pulse: increments modulo 2ⁿ.
    pub fn tick(&mut self) {
        self.count = (self.count + 1) & ((1 << self.bits) - 1);
    }

    /// `true` if `pulses` pulses would overflow this counter.
    pub fn would_overflow(&self, pulses: u64) -> bool {
        pulses >= (1 << self.bits)
    }

    /// Shifts the signature out LSB-first (the "reconfigured as a shift
    /// register" read path of the paper).
    pub fn shift_out(&self) -> Vec<bool> {
        (0..self.bits).map(|i| self.count >> i & 1 == 1).collect()
    }
}

/// The complete gated measurement: counts rising edges of an oscillation
/// within a reference window.
///
/// This is the sampling model behind the paper's error analysis: the
/// counter sees rising edges at `phase + k·T`; those landing inside
/// `[0, window)` are counted.
#[derive(Debug, Clone, Copy)]
pub struct GatedCounter {
    /// Measurement window `t`, seconds.
    pub window: f64,
    /// Counter bit width.
    pub bits: u32,
}

impl GatedCounter {
    /// Creates a gated counter.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive or `bits` is out of `1..=63`.
    pub fn new(window: f64, bits: u32) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        assert!((1..=63).contains(&bits), "bits must be in 1..=63");
        Self { window, bits }
    }

    /// Number of rising edges of an oscillation with period `period` and
    /// first edge at `phase` that fall inside the window, saturated at
    /// the counter capacity.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or `phase` is negative.
    pub fn count_edges(&self, period: f64, phase: f64) -> u64 {
        assert!(
            period > 0.0 && period.is_finite(),
            "period must be positive"
        );
        assert!(phase >= 0.0, "phase must be non-negative");
        if phase >= self.window {
            return 0;
        }
        // Edges at phase, phase+T, ... strictly below window.
        let n = ((self.window - phase) / period).ceil() as u64;
        let n = if (phase + (n.saturating_sub(1)) as f64 * period) < self.window {
            n
        } else {
            n - 1
        };
        n.min((1 << self.bits) - 1)
    }

    /// Period estimate `T' = t / c` from a count.
    ///
    /// Returns `None` for a zero count (a stuck oscillator).
    pub fn estimate_period(&self, count: u64) -> Option<f64> {
        (count > 0).then(|| self.window / count as f64)
    }

    /// Runs a full measurement: counts edges and estimates the period.
    pub fn measure(&self, period: f64, phase: f64) -> Option<f64> {
        self.estimate_period(self.count_edges(period, phase))
    }
}

/// Gate-level synchronous binary counter, used to verify the behavioral
/// model and to ground the area numbers.
#[derive(Debug)]
pub struct GateLevelCounter {
    sim: DigitalSim,
    q: Vec<SignalId>,
    enable: SignalId,
    reset: SignalId,
}

impl GateLevelCounter {
    /// Builds an n-bit synchronous counter with enable and reset.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn build(bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        let n = bits as usize;
        let mut nl = Netlist::new();
        let enable = nl.signal();
        let reset = nl.signal();
        let q = nl.signals(n);
        // carry[0] = enable; carry[i+1] = carry[i] & q[i];
        // d[i] = q[i] ^ carry[i]
        let mut carry = enable;
        for (i, &qi) in q.iter().enumerate() {
            let d = nl.signal();
            nl.xor_gate(qi, carry, d);
            nl.dff(d, qi, Some(reset));
            if i + 1 < n {
                let next_carry = nl.signal();
                nl.and_gate(carry, qi, next_carry);
                carry = next_carry;
            }
        }
        let mut sim = DigitalSim::new(nl);
        sim.set(enable, Bit::H);
        sim.set(reset, Bit::H);
        sim.clock();
        sim.set(reset, Bit::L);
        Self {
            sim,
            q,
            enable,
            reset,
        }
    }

    /// Current count.
    ///
    /// # Panics
    ///
    /// Panics if any state bit is unknown (cannot happen after `build`).
    pub fn count(&self) -> u64 {
        let bits: Vec<Bit> = self.q.iter().map(|&s| self.sim.get(s)).collect();
        bits_to_u64(&bits).expect("counter state is defined after reset")
    }

    /// Applies one oscillator clock edge.
    pub fn tick(&mut self) {
        self.sim.clock();
    }

    /// Gates counting on or off (the stop signal).
    pub fn set_enable(&mut self, on: bool) {
        self.sim.set(self.enable, Bit::from_bool(on));
    }

    /// Synchronous reset pulse.
    pub fn reset(&mut self) {
        self.sim.set(self.reset, Bit::H);
        self.sim.clock();
        self.sim.set(self.reset, Bit::L);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavioral_counter_counts_and_wraps() {
        let mut c = BinaryCounter::new(3);
        for _ in 0..7 {
            c.tick();
        }
        assert_eq!(c.count(), 7);
        c.tick();
        assert_eq!(c.count(), 0, "wraps at 2^3");
        assert!(c.would_overflow(8));
        assert!(!c.would_overflow(7));
    }

    #[test]
    fn shift_out_is_lsb_first() {
        let mut c = BinaryCounter::new(4);
        for _ in 0..5 {
            c.tick();
        }
        assert_eq!(c.shift_out(), vec![true, false, true, false]);
    }

    #[test]
    fn gated_count_matches_closed_form() {
        let g = GatedCounter::new(1e-6, 16);
        // 5 ns period, phase 0: edges at 0, 5n, …, below 1 µs -> 200.
        assert_eq!(g.count_edges(5e-9, 0.0), 200);
        // Phase pushes one edge out.
        assert_eq!(g.count_edges(5e-9, 4.999e-9), 200);
        assert_eq!(g.count_edges(5e-9, 1.0e-6), 0);
    }

    #[test]
    fn count_respects_paper_bounds_over_phases() {
        // t/T − 1 ≤ c ≤ t/T + 1 for any phase (the paper's inequality).
        let g = GatedCounter::new(5e-6, 16);
        let period = 5.2e-9;
        let ratio = g.window / period;
        for k in 0..100 {
            let phase = period * k as f64 / 100.0;
            let c = g.count_edges(period, phase) as f64;
            assert!(c >= ratio - 1.0, "phase {phase}: c={c} < t/T - 1");
            assert!(c <= ratio + 1.0, "phase {phase}: c={c} > t/T + 1");
        }
    }

    #[test]
    fn estimate_recovers_period_within_quantization() {
        let g = GatedCounter::new(5e-6, 16);
        let period = 5e-9;
        let est = g.measure(period, 1.3e-9).expect("oscillating");
        // Error bounded by T²/t = 5 fs·ns... = 5e-12·? — see measure.rs;
        // here just assert it's within one part in c.
        assert!((est - period).abs() < period * period / g.window * 1.01);
    }

    #[test]
    fn zero_count_means_stuck() {
        let g = GatedCounter::new(1e-6, 8);
        assert_eq!(g.estimate_period(0), None);
    }

    #[test]
    fn saturates_at_capacity() {
        let g = GatedCounter::new(1e-3, 4); // tiny 4-bit counter
        assert_eq!(g.count_edges(1e-9, 0.0), 15, "saturated at 2^4 - 1");
    }

    #[test]
    fn gate_level_matches_behavioral() {
        let mut gl = GateLevelCounter::build(6);
        let mut bh = BinaryCounter::new(6);
        for _ in 0..75 {
            gl.tick();
            bh.tick();
            assert_eq!(gl.count(), bh.count());
        }
    }

    #[test]
    fn gate_level_enable_freezes_count() {
        let mut gl = GateLevelCounter::build(4);
        for _ in 0..5 {
            gl.tick();
        }
        assert_eq!(gl.count(), 5);
        gl.set_enable(false);
        for _ in 0..5 {
            gl.tick();
        }
        assert_eq!(gl.count(), 5, "stop signal freezes the signature");
        gl.set_enable(true);
        gl.tick();
        assert_eq!(gl.count(), 6);
    }

    #[test]
    fn gate_level_reset_clears() {
        let mut gl = GateLevelCounter::build(4);
        for _ in 0..9 {
            gl.tick();
        }
        gl.reset();
        assert_eq!(gl.count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The paper's count bounds hold for arbitrary period/phase/window.
        #[test]
        fn bounds_hold(
            period_ns in 0.5..50.0f64,
            phase_frac in 0.0..1.0f64,
            window_us in 0.1..10.0f64,
        ) {
            let period = period_ns * 1e-9;
            let window = window_us * 1e-6;
            let g = GatedCounter::new(window, 32);
            let c = g.count_edges(period, phase_frac * period) as f64;
            let ratio = window / period;
            prop_assert!(c >= ratio - 1.0);
            prop_assert!(c <= ratio + 1.0);
        }
    }
}
