//! Test-control sequencing and test-time estimation.
//!
//! The control logic of Fig. 5 configures each ring-oscillator group
//! (TE/OE/BY), gates the measurement window, and shifts the signature
//! out. The paper leaves the implementation open; this module provides a
//! behavioral controller that emits the exact control-signal sequence and
//! a test-time model used to reason about multi-voltage test cost.

/// Static control values applied to one ring-oscillator group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlSignals {
    /// Test enable: closes the oscillator loop.
    pub te: bool,
    /// Output enable of the tri-state TSV drivers.
    pub oe: bool,
    /// Per-segment bypass: `by[i] = true` takes TSV i out of the loop.
    pub by: Vec<bool>,
}

/// One measurement run within a group test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// All TSVs bypassed — the T₂ reference run.
    Reference,
    /// TSV `index` enabled, all others bypassed — a T₁ run.
    TsvUnderTest {
        /// Segment index of the TSV under test.
        index: usize,
    },
}

/// The sequence of runs testing every TSV of an N-segment group.
///
/// Runs the reference measurement first, then each TSV in turn — exactly
/// the two-run subtraction procedure of the paper, amortizing one
/// reference over N TSVs.
///
/// # Examples
///
/// ```
/// use rotsv_dft::control::{group_sequence, RunKind};
///
/// let runs = group_sequence(3);
/// assert_eq!(runs.len(), 4);
/// assert_eq!(runs[0].0, RunKind::Reference);
/// assert!(runs[0].1.by.iter().all(|&b| b), "reference bypasses all");
/// assert_eq!(runs[2].0, RunKind::TsvUnderTest { index: 1 });
/// assert!(!runs[2].1.by[1] && runs[2].1.by[0]);
/// ```
///
/// # Panics
///
/// Panics if `n_segments` is zero.
pub fn group_sequence(n_segments: usize) -> Vec<(RunKind, ControlSignals)> {
    assert!(n_segments > 0, "group must have at least one segment");
    let mut runs = Vec::with_capacity(n_segments + 1);
    runs.push((
        RunKind::Reference,
        ControlSignals {
            te: true,
            oe: true,
            by: vec![true; n_segments],
        },
    ));
    for i in 0..n_segments {
        let mut by = vec![true; n_segments];
        by[i] = false;
        runs.push((
            RunKind::TsvUnderTest { index: i },
            ControlSignals {
                te: true,
                oe: true,
                by,
            },
        ));
    }
    runs
}

/// Test-time model for the complete pre-bond TSV test.
#[derive(Debug, Clone, Copy)]
pub struct TestTimeModel {
    /// Counter gate window per measurement, seconds.
    pub window: f64,
    /// Scan-out clock frequency for the signature, hertz.
    pub shift_clock_hz: f64,
    /// Counter width (bits shifted out per measurement).
    pub counter_bits: u32,
    /// Configuration overhead per run, seconds (loading TE/OE/BY).
    pub config_time: f64,
}

impl Default for TestTimeModel {
    /// The paper's sizing example: 5 µs window, 10-bit counter, with a
    /// 50 MHz scan clock and 1 µs of configuration per run.
    fn default() -> Self {
        Self {
            window: 5e-6,
            shift_clock_hz: 50e6,
            counter_bits: 10,
            config_time: 1e-6,
        }
    }
}

impl TestTimeModel {
    /// Time for a single measurement run (configure, count, shift out).
    pub fn per_run(&self) -> f64 {
        self.config_time + self.window + self.counter_bits as f64 / self.shift_clock_hz
    }

    /// Time to test one group of `n_segments` TSVs at one voltage
    /// (reference run + one run per TSV).
    ///
    /// # Panics
    ///
    /// Panics if `n_segments` is zero.
    pub fn per_group(&self, n_segments: usize) -> f64 {
        assert!(n_segments > 0, "group must have at least one segment");
        self.per_run() * (n_segments + 1) as f64
    }

    /// Total test time for `n_tsvs` TSVs in groups of `group_size`,
    /// measured at `n_voltages` supply levels.
    ///
    /// Groups are assumed to be tested serially (shared measurement
    /// logic); voltage changes add `voltage_switch_time` each.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` or `n_voltages` is zero.
    pub fn total(
        &self,
        n_tsvs: usize,
        group_size: usize,
        n_voltages: usize,
        voltage_switch_time: f64,
    ) -> f64 {
        assert!(group_size > 0, "group size must be positive");
        assert!(n_voltages > 0, "need at least one voltage");
        let groups = n_tsvs.div_ceil(group_size) as f64;
        n_voltages as f64 * (groups * self.per_group(group_size) + voltage_switch_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_covers_every_tsv_once() {
        let runs = group_sequence(5);
        assert_eq!(runs.len(), 6);
        for i in 0..5 {
            let (kind, sig) = &runs[i + 1];
            assert_eq!(*kind, RunKind::TsvUnderTest { index: i });
            assert!(sig.te && sig.oe);
            let enabled: Vec<usize> = sig
                .by
                .iter()
                .enumerate()
                .filter(|(_, &b)| !b)
                .map(|(j, _)| j)
                .collect();
            assert_eq!(enabled, vec![i], "exactly one TSV enabled");
        }
    }

    #[test]
    fn per_run_adds_all_phases() {
        let m = TestTimeModel::default();
        let expect = 1e-6 + 5e-6 + 10.0 / 50e6;
        assert!((m.per_run() - expect).abs() < 1e-15);
    }

    #[test]
    fn group_time_amortizes_reference() {
        let m = TestTimeModel::default();
        assert!((m.per_group(5) - 6.0 * m.per_run()).abs() < 1e-15);
    }

    #[test]
    fn total_scales_with_voltages_and_groups() {
        let m = TestTimeModel::default();
        let t1 = m.total(1000, 5, 1, 0.0);
        let t3 = m.total(1000, 5, 3, 0.0);
        assert!((t3 / t1 - 3.0).abs() < 1e-12);
        // 1000 TSVs, N = 5: 200 groups × 6 runs ≈ 1200 runs/voltage.
        assert!((t1 - 200.0 * m.per_group(5)).abs() < 1e-12);
        // Stays in the milliseconds: the paper's "test time does not grow
        // significantly if multiple voltages are used" claim.
        assert!(t3 < 0.1, "total {t3} s");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_group_rejected() {
        let _ = group_sequence(0);
    }
}
