#![warn(missing_docs)]

//! On-chip measurement DfT for the pre-bond TSV test.
//!
//! The analog side of the method (ring oscillators, `rotsv-ro`) produces
//! an oscillating signal whose period encodes the TSV state. This crate
//! implements the digital side the paper describes in Section III-B and
//! analyzes in Section IV-C/IV-D:
//!
//! * [`logic`]/[`sim`] — a small gate-level digital simulator (three-valued
//!   logic, combinational gates, D flip-flops) used to verify the
//!   measurement structures at gate level,
//! * [`counter`] — the gated binary counter: cycle-accurate behavioral
//!   model, gate-level implementation, and the sampling model
//!   (count cycles of an oscillation within a reference window),
//! * [`lfsr`] — the linear-feedback-shift-register alternative with its
//!   state→count decode table (fewer gates, but needs a lookup),
//! * [`measure`] — the quantization-error theory: bounds
//!   `t/T − 1 ≤ c ≤ t/T + 1`, error `E ≈ T²/t`, window and bit-width
//!   sizing (reproduces the paper's T = 5 ns / E = 5 ps / t = 5 µs /
//!   10-bit example),
//! * [`area`] — the DfT area cost model of Section IV-D (two muxes per
//!   TSV, one shared inverter per group; 1000 TSVs at N = 5 cost
//!   7782 µm² < 0.04 % of a 25 mm² die),
//! * [`control`] — the test-control FSM that sequences TE/OE/BY and the
//!   counter window over a group of TSVs.

pub mod area;
pub mod control;
pub mod counter;
pub mod lfsr;
pub mod logic;
pub mod measure;
pub mod sim;

pub use area::DftAreaModel;
pub use counter::{BinaryCounter, GatedCounter};
pub use lfsr::Lfsr;
pub use measure::{count_bounds, error_bounds, max_error, required_bits, required_window};
