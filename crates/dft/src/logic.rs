//! Three-valued digital logic.

use std::fmt;
use std::ops::Not;

/// A digital signal value: low, high, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bit {
    /// Logic 0.
    L,
    /// Logic 1.
    H,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Bit {
    /// Converts from `bool`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Bit::H
        } else {
            Bit::L
        }
    }

    /// `Some(bool)` for defined values, `None` for [`Bit::X`].
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Bit::L => Some(false),
            Bit::H => Some(true),
            Bit::X => None,
        }
    }

    /// Three-valued AND.
    pub fn and(self, other: Bit) -> Bit {
        match (self, other) {
            (Bit::L, _) | (_, Bit::L) => Bit::L,
            (Bit::H, Bit::H) => Bit::H,
            _ => Bit::X,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: Bit) -> Bit {
        match (self, other) {
            (Bit::H, _) | (_, Bit::H) => Bit::H,
            (Bit::L, Bit::L) => Bit::L,
            _ => Bit::X,
        }
    }

    /// Three-valued XOR.
    pub fn xor(self, other: Bit) -> Bit {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Bit::from_bool(a != b),
            _ => Bit::X,
        }
    }

    /// 2:1 select: `sel ? b : a` (X select with equal inputs resolves).
    pub fn mux(self, a: Bit, b: Bit) -> Bit {
        match self {
            Bit::L => a,
            Bit::H => b,
            Bit::X => {
                if a == b {
                    a
                } else {
                    Bit::X
                }
            }
        }
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        match self {
            Bit::L => Bit::H,
            Bit::H => Bit::L,
            Bit::X => Bit::X,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        Bit::from_bool(b)
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Bit::L => "0",
            Bit::H => "1",
            Bit::X => "x",
        })
    }
}

/// Packs a slice of bits (LSB first) into a `u64`.
///
/// Returns `None` if any bit is [`Bit::X`].
///
/// # Panics
///
/// Panics if more than 64 bits are given.
pub fn bits_to_u64(bits: &[Bit]) -> Option<u64> {
    assert!(bits.len() <= 64, "too many bits for u64");
    let mut out = 0u64;
    for (i, b) in bits.iter().enumerate() {
        match b.to_bool() {
            Some(true) => out |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

/// Unpacks the low `n` bits of `value` into a vector (LSB first).
///
/// # Panics
///
/// Panics if `n > 64`.
pub fn u64_to_bits(value: u64, n: usize) -> Vec<Bit> {
    assert!(n <= 64, "too many bits for u64");
    (0..n)
        .map(|i| Bit::from_bool(value >> i & 1 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        assert_eq!(Bit::H.and(Bit::H), Bit::H);
        assert_eq!(Bit::H.and(Bit::L), Bit::L);
        assert_eq!(Bit::L.and(Bit::X), Bit::L, "0 dominates X");
        assert_eq!(Bit::H.and(Bit::X), Bit::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Bit::L.or(Bit::L), Bit::L);
        assert_eq!(Bit::H.or(Bit::X), Bit::H, "1 dominates X");
        assert_eq!(Bit::L.or(Bit::X), Bit::X);
    }

    #[test]
    fn xor_and_not() {
        assert_eq!(Bit::H.xor(Bit::L), Bit::H);
        assert_eq!(Bit::H.xor(Bit::H), Bit::L);
        assert_eq!(Bit::H.xor(Bit::X), Bit::X);
        assert_eq!(!Bit::H, Bit::L);
        assert_eq!(!Bit::X, Bit::X);
    }

    #[test]
    fn mux_select() {
        assert_eq!(Bit::L.mux(Bit::H, Bit::L), Bit::H);
        assert_eq!(Bit::H.mux(Bit::H, Bit::L), Bit::L);
        assert_eq!(Bit::X.mux(Bit::H, Bit::H), Bit::H, "agreeing inputs");
        assert_eq!(Bit::X.mux(Bit::H, Bit::L), Bit::X);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let bits = u64_to_bits(0b1011, 6);
        assert_eq!(bits_to_u64(&bits), Some(0b1011));
        assert_eq!(bits.len(), 6);
    }

    #[test]
    fn pack_with_x_is_none() {
        let mut bits = u64_to_bits(3, 4);
        bits[2] = Bit::X;
        assert_eq!(bits_to_u64(&bits), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}{}{}", Bit::L, Bit::H, Bit::X), "01x");
    }
}
