//! DfT area cost model (Section IV-D of the paper).
//!
//! Per TSV the method adds two multiplexers (functional/test select and
//! bypass); each group of N TSVs shares one ring inverter. The control
//! and measurement logic is shared across many groups and amortizes to a
//! negligible per-TSV cost, so the paper's headline number counts only
//! muxes and inverters: for 1000 TSVs at N = 5, using Nangate areas
//! (MUX2 3.75 µm², INV 1.41 µm²), the total is 7782 µm² — less than
//! 0.04 % of a 25 mm² die.

use rotsv_num::units::SquareMicrons;

/// Area model parameterized on the library cell areas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DftAreaModel {
    /// Area of one 2:1 multiplexer, µm².
    pub mux_area: SquareMicrons,
    /// Area of one inverter, µm².
    pub inv_area: SquareMicrons,
    /// Multiplexers added per TSV.
    pub muxes_per_tsv: usize,
}

impl Default for DftAreaModel {
    /// The paper's Nangate 45 nm numbers.
    fn default() -> Self {
        Self {
            mux_area: SquareMicrons(3.75),
            inv_area: SquareMicrons(1.41),
            muxes_per_tsv: 2,
        }
    }
}

impl DftAreaModel {
    /// Total oscillator DfT area for `n_tsvs` TSVs grouped `group_size`
    /// per ring.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn total_area(&self, n_tsvs: usize, group_size: usize) -> SquareMicrons {
        assert!(group_size > 0, "group size must be positive");
        let groups = n_tsvs.div_ceil(group_size);
        let mux = self.mux_area.value() * (self.muxes_per_tsv * n_tsvs) as f64;
        let inv = self.inv_area.value() * groups as f64;
        SquareMicrons(mux + inv)
    }

    /// The DfT area as a fraction of a die of `die_mm2` mm².
    ///
    /// # Panics
    ///
    /// Panics if `die_mm2` is not positive or `group_size` is zero.
    pub fn fraction_of_die(&self, n_tsvs: usize, group_size: usize, die_mm2: f64) -> f64 {
        assert!(
            die_mm2 > 0.0 && die_mm2.is_finite(),
            "die area must be positive"
        );
        let um2_per_mm2 = 1e6;
        self.total_area(n_tsvs, group_size).value() / (die_mm2 * um2_per_mm2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: 1000 TSVs, N = 5.
    #[test]
    fn paper_area_example() {
        let model = DftAreaModel::default();
        let area = model.total_area(1000, 5);
        // 1000·2·3.75 + 200·1.41 = 7500 + 282 = 7782 µm².
        assert!((area.value() - 7782.0).abs() < 1e-9, "area {area}");
        let frac = model.fraction_of_die(1000, 5, 25.0);
        assert!(frac < 0.0004, "fraction {frac} should be < 0.04 %");
        assert!(frac > 0.0002, "fraction {frac} suspiciously small");
    }

    #[test]
    fn partial_group_rounds_up() {
        let model = DftAreaModel::default();
        // 7 TSVs at N = 5 need two inverters.
        let area = model.total_area(7, 5);
        let expect = 7.0 * 2.0 * 3.75 + 2.0 * 1.41;
        assert!((area.value() - expect).abs() < 1e-12);
    }

    #[test]
    fn larger_groups_share_more_inverters() {
        let model = DftAreaModel::default();
        let a1 = model.total_area(1000, 1);
        let a10 = model.total_area(1000, 10);
        assert!(a10.value() < a1.value());
        // Mux area dominates either way.
        assert!(a10.value() > 7500.0);
    }

    #[test]
    fn zero_tsvs_cost_nothing() {
        let model = DftAreaModel::default();
        assert_eq!(model.total_area(0, 5).value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_rejected() {
        let _ = DftAreaModel::default().total_area(10, 0);
    }
}
