//! A compact gate-level synchronous digital simulator.
//!
//! The measurement structures (counter, LFSR) are verified at gate level
//! against their behavioral models. The simulator evaluates combinational
//! gates to a fixpoint and latches D flip-flops on [`DigitalSim::clock`].

use crate::logic::Bit;

/// Identifier of a digital signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

impl SignalId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Gate {
    Not {
        a: SignalId,
        z: SignalId,
    },
    And {
        a: SignalId,
        b: SignalId,
        z: SignalId,
    },
    Or {
        a: SignalId,
        b: SignalId,
        z: SignalId,
    },
    Xor {
        a: SignalId,
        b: SignalId,
        z: SignalId,
    },
    Mux {
        sel: SignalId,
        a: SignalId,
        b: SignalId,
        z: SignalId,
    },
}

#[derive(Debug, Clone)]
struct Dff {
    d: SignalId,
    q: SignalId,
    reset: Option<SignalId>,
}

/// A gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    n_signals: usize,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new signal.
    pub fn signal(&mut self) -> SignalId {
        let id = SignalId(self.n_signals);
        self.n_signals += 1;
        id
    }

    /// Allocates `n` signals.
    pub fn signals(&mut self, n: usize) -> Vec<SignalId> {
        (0..n).map(|_| self.signal()).collect()
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.n_signals
    }

    /// Number of combinational gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    fn check(&self, s: SignalId) {
        assert!(s.0 < self.n_signals, "signal out of range");
    }

    /// `z = !a`.
    pub fn not_gate(&mut self, a: SignalId, z: SignalId) {
        self.check(a);
        self.check(z);
        self.gates.push(Gate::Not { a, z });
    }

    /// `z = a & b`.
    pub fn and_gate(&mut self, a: SignalId, b: SignalId, z: SignalId) {
        self.check(a);
        self.check(b);
        self.check(z);
        self.gates.push(Gate::And { a, b, z });
    }

    /// `z = a | b`.
    pub fn or_gate(&mut self, a: SignalId, b: SignalId, z: SignalId) {
        self.check(a);
        self.check(b);
        self.check(z);
        self.gates.push(Gate::Or { a, b, z });
    }

    /// `z = a ^ b`.
    pub fn xor_gate(&mut self, a: SignalId, b: SignalId, z: SignalId) {
        self.check(a);
        self.check(b);
        self.check(z);
        self.gates.push(Gate::Xor { a, b, z });
    }

    /// `z = sel ? b : a`.
    pub fn mux_gate(&mut self, sel: SignalId, a: SignalId, b: SignalId, z: SignalId) {
        self.check(sel);
        self.check(a);
        self.check(b);
        self.check(z);
        self.gates.push(Gate::Mux { sel, a, b, z });
    }

    /// A D flip-flop `q ← d` on each clock; optional synchronous
    /// active-high reset forcing `q ← 0`.
    pub fn dff(&mut self, d: SignalId, q: SignalId, reset: Option<SignalId>) {
        self.check(d);
        self.check(q);
        if let Some(r) = reset {
            self.check(r);
        }
        self.dffs.push(Dff { d, q, reset });
    }
}

/// Simulation state over a [`Netlist`].
#[derive(Debug, Clone)]
pub struct DigitalSim {
    netlist: Netlist,
    values: Vec<Bit>,
}

impl DigitalSim {
    /// Creates a simulator with all signals at [`Bit::X`].
    pub fn new(netlist: Netlist) -> Self {
        let values = vec![Bit::X; netlist.signal_count()];
        Self { netlist, values }
    }

    /// Current value of `s`.
    pub fn get(&self, s: SignalId) -> Bit {
        self.values[s.0]
    }

    /// Drives input `s` to `v` and re-settles combinational logic.
    pub fn set(&mut self, s: SignalId, v: impl Into<Bit>) {
        self.values[s.0] = v.into();
        self.settle();
    }

    /// Evaluates combinational gates until no value changes.
    ///
    /// # Panics
    ///
    /// Panics if the combinational network does not settle (a
    /// combinational loop).
    pub fn settle(&mut self) {
        // Each pass propagates values at least one level deeper, so
        // gate_count passes are always enough for an acyclic network.
        let max_passes = self.netlist.gates.len() + 2;
        for _ in 0..max_passes {
            let mut changed = false;
            for gate in &self.netlist.gates {
                let (z, v) = match *gate {
                    Gate::Not { a, z } => (z, !self.values[a.0]),
                    Gate::And { a, b, z } => (z, self.values[a.0].and(self.values[b.0])),
                    Gate::Or { a, b, z } => (z, self.values[a.0].or(self.values[b.0])),
                    Gate::Xor { a, b, z } => (z, self.values[a.0].xor(self.values[b.0])),
                    Gate::Mux { sel, a, b, z } => (
                        z,
                        self.values[sel.0].mux(self.values[a.0], self.values[b.0]),
                    ),
                };
                if self.values[z.0] != v {
                    self.values[z.0] = v;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
        panic!("combinational network did not settle (loop?)");
    }

    /// Applies one clock edge: all flip-flops latch simultaneously, then
    /// combinational logic settles.
    pub fn clock(&mut self) {
        let next: Vec<(usize, Bit)> = self
            .netlist
            .dffs
            .iter()
            .map(|ff| {
                let v = match ff.reset {
                    Some(r) if self.values[r.0] == Bit::H => Bit::L,
                    _ => self.values[ff.d.0],
                };
                (ff.q.0, v)
            })
            .collect();
        for (idx, v) in next {
            self.values[idx] = v;
        }
        self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_chain_settles() {
        let mut nl = Netlist::new();
        let a = nl.signal();
        let b = nl.signal();
        let c = nl.signal();
        nl.not_gate(a, b);
        nl.not_gate(b, c);
        let mut sim = DigitalSim::new(nl);
        sim.set(a, Bit::H);
        assert_eq!(sim.get(b), Bit::L);
        assert_eq!(sim.get(c), Bit::H);
    }

    #[test]
    fn dff_latches_on_clock_only() {
        let mut nl = Netlist::new();
        let d = nl.signal();
        let q = nl.signal();
        nl.dff(d, q, None);
        let mut sim = DigitalSim::new(nl);
        sim.set(d, Bit::H);
        assert_eq!(sim.get(q), Bit::X, "not latched yet");
        sim.clock();
        assert_eq!(sim.get(q), Bit::H);
        sim.set(d, Bit::L);
        assert_eq!(sim.get(q), Bit::H, "holds until next edge");
        sim.clock();
        assert_eq!(sim.get(q), Bit::L);
    }

    #[test]
    fn reset_clears_flip_flop() {
        let mut nl = Netlist::new();
        let d = nl.signal();
        let q = nl.signal();
        let r = nl.signal();
        nl.dff(d, q, Some(r));
        let mut sim = DigitalSim::new(nl);
        sim.set(d, Bit::H);
        sim.set(r, Bit::H);
        sim.clock();
        assert_eq!(sim.get(q), Bit::L, "reset wins over data");
        sim.set(r, Bit::L);
        sim.clock();
        assert_eq!(sim.get(q), Bit::H);
    }

    #[test]
    fn toggle_flop_divides_by_two() {
        // q feeds back through an inverter: classic divide-by-2.
        let mut nl = Netlist::new();
        let q = nl.signal();
        let qb = nl.signal();
        let r = nl.signal();
        nl.not_gate(q, qb);
        nl.dff(qb, q, Some(r));
        let mut sim = DigitalSim::new(nl);
        sim.set(r, Bit::H);
        sim.clock();
        sim.set(r, Bit::L);
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(sim.get(q));
            sim.clock();
        }
        assert_eq!(seen, vec![Bit::L, Bit::H, Bit::L, Bit::H]);
    }

    #[test]
    #[should_panic(expected = "did not settle")]
    fn combinational_loop_is_detected() {
        // An odd inversion loop never settles.
        let mut nl = Netlist::new();
        let a = nl.signal();
        let b = nl.signal();
        nl.not_gate(a, b);
        nl.not_gate(b, b); // b = !b: contradiction
        let mut sim = DigitalSim::new(nl);
        sim.set(a, Bit::H);
    }

    #[test]
    fn mux_gate_selects() {
        let mut nl = Netlist::new();
        let sel = nl.signal();
        let a = nl.signal();
        let b = nl.signal();
        let z = nl.signal();
        nl.mux_gate(sel, a, b, z);
        let mut sim = DigitalSim::new(nl);
        sim.set(a, Bit::H);
        sim.set(b, Bit::L);
        sim.set(sel, Bit::L);
        assert_eq!(sim.get(z), Bit::H);
        sim.set(sel, Bit::H);
        assert_eq!(sim.get(z), Bit::L);
    }
}
