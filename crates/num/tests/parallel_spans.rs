//! Cross-thread span parenting under worker panics: a panicking
//! `try_parallel_map` index must not orphan its span (the guard unwinds
//! and closes it exactly once), and retrying the failed index — the
//! campaign runner's recovery path — must not double-count any
//! completed `mc_sample` duration.
//!
//! Own test binary: the obs tracing switch and span registry are
//! process-global, so this must not share a process with other tests
//! that toggle or reset them.

use rotsv_num::parallel::try_parallel_map;
use rotsv_obs::{current_path, span_report, SpanGuard};

#[test]
fn worker_panic_and_retry_keep_span_accounting_exact() {
    rotsv_obs::set_tracing(true);
    rotsv_obs::reset();

    const ATTEMPTS: usize = 8;
    const PANIC_AT: usize = 3;
    {
        let _root = SpanGuard::enter("mc_population");
        let parent = current_path();
        let results = try_parallel_map(ATTEMPTS, |i| {
            let guard = SpanGuard::enter_under(parent, "mc_sample");
            guard.field("index", i as f64);
            if i == PANIC_AT {
                panic!("injected failure at {i}");
            }
            i
        });
        assert_eq!(results.len(), ATTEMPTS);
        let failed: Vec<usize> = results
            .iter()
            .filter_map(|r| r.as_ref().err().map(|p| p.index))
            .collect();
        assert_eq!(failed, vec![PANIC_AT], "exactly the injected index fails");
        for (i, r) in results.iter().enumerate() {
            if i != PANIC_AT {
                assert_eq!(*r.as_ref().expect("non-injected index completes"), i);
            }
        }

        // Retry the failed index, as the campaign runner would, under
        // the same captured parent.
        let rerun = try_parallel_map(1, |_| {
            let guard = SpanGuard::enter_under(parent, "mc_sample");
            guard.field("index", PANIC_AT as f64);
            PANIC_AT
        });
        assert_eq!(*rerun[0].as_ref().expect("retry succeeds"), PANIC_AT);
    }

    let report = span_report();
    rotsv_obs::set_tracing(false);

    // No orphans: every sample span sits under the captured parent —
    // there is exactly one mc_sample path, and it is not a root.
    let sample_paths: Vec<_> = report
        .entries
        .iter()
        .filter(|e| e.name == "mc_sample")
        .collect();
    assert_eq!(
        sample_paths.len(),
        1,
        "mc_sample must appear under exactly one path, got {:?}",
        sample_paths.iter().map(|e| &e.path).collect::<Vec<_>>()
    );
    let sample = sample_paths[0];
    assert_eq!(sample.path, "mc_population>mc_sample");
    assert_eq!(sample.depth, 1);

    // No double counting: the panicked attempt's guard unwound and
    // closed once, so closings = attempts + the one retry, exactly.
    assert_eq!(
        sample.count,
        (ATTEMPTS + 1) as u64,
        "each enter/exit pair must be counted exactly once"
    );
    let (key, agg) = &sample.fields[0];
    assert_eq!(key, "index");
    assert_eq!(agg.count, (ATTEMPTS + 1) as u64);
    // Σ indices 0..8 plus the retried index 3.
    let expected_sum = (0..ATTEMPTS).sum::<usize>() + PANIC_AT;
    assert!((agg.sum - expected_sum as f64).abs() < 1e-12);

    // The root closed once and the worker stacks rebalanced (a corrupt
    // stack would leave pending aggregates that shift these numbers).
    let root = report
        .entries
        .iter()
        .find(|e| e.path == "mc_population")
        .expect("root span recorded");
    assert_eq!(root.count, 1);
}
