//! Property-based tests for the numeric foundations.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::TestRng;
use rotsv_num::linsolve::{LuFactors, SolveError};
use rotsv_num::matrix::Matrix;
use rotsv_num::rng::GaussianRng;
use rotsv_num::sparse::{BatchedLu, SparseLu, SparseMatrix, SymbolicLu};
use rotsv_num::stats::{percentile, point_overlap, range_overlap, Summary};

fn random_dd_matrix(n: usize, seed: u64) -> Matrix {
    // Diagonally dominant => well conditioned and nonsingular.
    let mut rng = GaussianRng::seed_from(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.standard_normal();
                a[(i, j)] = v;
                row_sum += v.abs();
            }
        }
        a[(i, i)] = row_sum + 1.0 + rng.standard_normal().abs();
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LU solves random diagonally-dominant systems to tight residuals.
    #[test]
    fn lu_residual_is_tiny(n in 1usize..40, seed in 0u64..1000) {
        let a = random_dd_matrix(n, seed);
        let mut rng = GaussianRng::seed_from(seed ^ 0xABCD);
        let b: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let lu = LuFactors::factor(a.clone()).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for i in 0..n {
            prop_assert!((r[i] - b[i]).abs() < 1e-9, "row {i}: {} vs {}", r[i], b[i]);
        }
    }

    /// Solving A·x for x recovered from A·x0 returns x0 (round trip).
    #[test]
    fn lu_round_trips(n in 1usize..30, seed in 0u64..1000) {
        let a = random_dd_matrix(n, seed);
        let mut rng = GaussianRng::seed_from(seed.wrapping_add(17));
        let x0: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let b = a.mul_vec(&x0);
        let x = LuFactors::factor(a).unwrap().solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - x0[i]).abs() < 1e-8);
        }
    }

    /// Summary invariants: min ≤ mean ≤ max, std ≥ 0.
    #[test]
    fn summary_invariants(data in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, data.len());
    }

    /// Overlap metrics are symmetric and bounded in [0, 1].
    #[test]
    fn overlap_symmetry_and_bounds(
        a in prop::collection::vec(-100.0..100.0f64, 2..50),
        b in prop::collection::vec(-100.0..100.0f64, 2..50),
    ) {
        let r1 = range_overlap(&a, &b);
        let r2 = range_overlap(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&r1));
        let p1 = point_overlap(&a, &b);
        let p2 = point_overlap(&b, &a);
        prop_assert!((p1 - p2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&p1));
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone(data in prop::collection::vec(-1e3..1e3f64, 1..100)) {
        let s = Summary::of(&data);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let q = percentile(&data, p);
            prop_assert!(q >= prev - 1e-12);
            prop_assert!(q >= s.min - 1e-12 && q <= s.max + 1e-12);
            prev = q;
        }
    }

    /// Sparse LU agrees with the dense reference to 1e-12 on random
    /// MNA-shaped systems (conductance block plus voltage-source border),
    /// both on the first factorization and after a value-only refactor.
    #[test]
    fn sparse_lu_matches_dense_on_mna_systems(
        n_nodes in 2usize..24,
        n_vs in 0usize..3,
        n_edges in 0usize..40,
        seed in 0u64..400,
    ) {
        let n_vs = n_vs.min(n_nodes);
        let (triplets, n) = random_mna_triplets(n_nodes, n_vs, n_edges, seed, seed ^ 0xA11);
        let b = random_rhs(n, seed ^ 0xB0B);

        let sparse = SparseMatrix::from_triplets(n, &triplets);
        let mut lu = SparseLu::new(&sparse).unwrap();
        let x_sparse = lu.solve(&b).unwrap();
        let x_dense = dense_solve(n, &triplets, &b);
        assert_close(&x_sparse, &x_dense, 1e-12);

        // Same topology seed => same pattern; new values: the refactor
        // path must agree with a fresh dense solve too.
        let (triplets2, _) = random_mna_triplets(n_nodes, n_vs, n_edges, seed, seed ^ 0xF00D);
        let sparse2 = SparseMatrix::from_triplets(n, &triplets2);
        lu.refactor(&sparse2).unwrap();
        let x_sparse2 = lu.solve(&b).unwrap();
        let x_dense2 = dense_solve(n, &triplets2, &b);
        assert_close(&x_sparse2, &x_dense2, 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The staged kernel (BTF + ordering + scaling) recovers the known
    /// solution of randomly scrambled block-triangular systems — rows
    /// and columns permuted, rows optionally scaled across twelve
    /// orders of magnitude — and agrees with the dense reference on the
    /// well-scaled ones. Covers first factorization and a value-only
    /// refactor of the same scrambled pattern.
    #[test]
    fn sparse_lu_solves_scrambled_btf_systems(
        n_blocks in 1usize..6,
        coupling in 0usize..8,
        scale_rows in 0usize..2,
        seed in 0u64..300,
    ) {
        let scale_rows = scale_rows == 1;
        let (triplets, n) = random_btf_triplets(n_blocks, coupling, scale_rows, seed, seed ^ 0x5EED);
        let a = SparseMatrix::from_triplets(n, &triplets);
        let x_true = random_rhs(n, seed ^ 0x7A0E);
        let b = a.mul_vec(&x_true);

        let mut lu = SparseLu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert_close(&x, &x_true, 1e-6);
        if !scale_rows {
            // Well-scaled rows: the dense partial-pivot reference is
            // accurate too, and both must agree tightly.
            assert_close(&x, &dense_solve(n, &triplets, &b), 1e-10);
        }

        // Same pattern, new values: the refactor path must solve the new
        // system just as well.
        let (triplets2, _) = random_btf_triplets(n_blocks, coupling, scale_rows, seed, seed ^ 0xF00D);
        let a2 = SparseMatrix::from_triplets(n, &triplets2);
        let b2 = a2.mul_vec(&x_true);
        lu.refactor(&a2).unwrap();
        let x2 = lu.solve(&b2).unwrap();
        assert_close(&x2, &x_true, 1e-6);
    }

    /// A numerically singular diagonal block (duplicated rows) or a
    /// structurally singular one (an unknown no equation mentions) is
    /// reported as [`SolveError::Singular`] no matter how the system is
    /// scrambled or coupled.
    #[test]
    fn singular_blocks_are_rejected(
        n_blocks in 1usize..5,
        coupling in 0usize..6,
        structural in 0usize..2,
        seed in 0u64..200,
    ) {
        let (mut triplets, n) = random_btf_triplets(n_blocks, coupling, false, seed, seed ^ 0xBAD);
        let mut val = TestRng::seed_from(seed ^ 0xD00F);
        let dim = if structural == 1 {
            // Column n is never referenced: maximum matching must fail.
            triplets.push((n, 0, 1.0 + val.next_f64()));
            n + 1
        } else {
            // Append a 2x2 block with exactly duplicated rows; its
            // second pivot cancels to exactly zero under any in-block
            // pivot choice.
            let (va, vb) = (1.0 + val.next_f64(), 1.0 + val.next_f64());
            triplets.push((n, n, va));
            triplets.push((n, n + 1, vb));
            triplets.push((n + 1, n, va));
            triplets.push((n + 1, n + 1, vb));
            n + 2
        };
        let mut topo = TestRng::seed_from(seed ^ 0x5C12);
        let rp = random_perm(dim, &mut topo);
        let cp = random_perm(dim, &mut topo);
        let scrambled: Vec<(usize, usize, f64)> =
            triplets.iter().map(|&(i, j, v)| (rp[i], cp[j], v)).collect();
        let a = SparseMatrix::from_triplets(dim, &scrambled);
        prop_assert!(matches!(SparseLu::new(&a), Err(SolveError::Singular { .. })));
    }

    /// Regression for the asynchronous batched engine under the staged
    /// ordering: lane-at-a-time [`BatchedLu::refactor_masked`] stores
    /// factors bit-identical to one full-batch sweep, and both match the
    /// scalar [`SparseLu`] per lane.
    #[test]
    fn masked_batched_refactor_agrees_with_scalar(
        n_blocks in 1usize..5,
        coupling in 0usize..6,
        k in 2usize..10,
        seed in 0u64..200,
    ) {
        let (triplets, n) = random_btf_triplets(n_blocks, coupling, false, seed, seed ^ 0xC0DE);
        let a = SparseMatrix::from_triplets(n, &triplets);
        let nnz = a.nnz();
        // Per-lane multiplicative perturbations small enough that the
        // shared pivot order keeps working (no re-analysis).
        let mut val = TestRng::seed_from(seed ^ 0x1A7E5);
        let mut vals = vec![0.0; nnz * k];
        for s in 0..nnz {
            for lane in 0..k {
                vals[s * k + lane] = a.values()[s] * (0.9 + 0.2 * val.next_f64());
            }
        }
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());

        let mut full = BatchedLu::new(Arc::clone(&sym), k);
        prop_assert_eq!(full.refactor(&a, &vals).unwrap(), 0);

        // Refresh the masked batch one lane at a time, in scrambled order.
        let mut masked = BatchedLu::new(Arc::clone(&sym), k);
        let order = random_perm(k, &mut TestRng::seed_from(seed ^ 0xFACE));
        for lane in order {
            let mut mask = vec![false; k];
            mask[lane] = true;
            let (analyses, invalidated) = masked.refactor_masked(&a, &vals, &mask).unwrap();
            prop_assert_eq!((analyses, invalidated), (0, false));
        }

        let b = random_rhs(n, seed ^ 0xB00);
        let mut bb_full: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
        let mut bb_masked = bb_full.clone();
        full.solve_in_place(&mut bb_full);
        masked.solve_in_place(&mut bb_masked);
        prop_assert_eq!(&bb_full, &bb_masked, "masked factors must be bit-identical");

        for lane in 0..k {
            let mut al = a.clone();
            al.zero_values();
            for s in 0..nnz {
                al.add_slot(s, vals[s * k + lane]);
            }
            let lu = SparseLu::with_symbolic(Arc::clone(&sym), &al).unwrap();
            let want = lu.solve(&b).unwrap();
            let got: Vec<f64> = (0..n).map(|i| bb_full[i * k + lane]).collect();
            assert_close(&got, &want, 1e-12);
        }
    }
}

/// Builds the triplets of a random block-lower-triangular system and
/// scrambles it with row/column permutations: `n_blocks` diagonally
/// dominant diagonal blocks of 1–5 unknowns, `coupling` random
/// below-block entries, and (optionally) per-row scale factors spanning
/// `10^-6..10^6`. Pattern decisions draw from `topo_seed` only, so two
/// calls sharing it produce the same scrambled sparsity pattern with
/// different values — that second result exercises the refactor path.
fn random_btf_triplets(
    n_blocks: usize,
    coupling: usize,
    scale_rows: bool,
    topo_seed: u64,
    value_seed: u64,
) -> (Vec<(usize, usize, f64)>, usize) {
    let mut topo = TestRng::seed_from(topo_seed);
    let mut val = TestRng::seed_from(value_seed);
    let sizes: Vec<usize> = (0..n_blocks)
        .map(|_| 1 + (topo.next_u64() % 5) as usize)
        .collect();
    let mut starts = vec![0usize];
    for s in &sizes {
        starts.push(starts.last().unwrap() + s);
    }
    let n = *starts.last().unwrap();

    let mut t = Vec::new();
    for b in 0..n_blocks {
        let (s, e) = (starts[b], starts[b + 1]);
        for i in s..e {
            let mut off_sum = 0.0;
            for j in s..e {
                if i != j && topo.next_u64().is_multiple_of(2) {
                    let v = 2.0 * val.next_f64() - 1.0;
                    t.push((i, j, v));
                    off_sum += v.abs();
                }
            }
            // Diagonal dominance keeps every block nonsingular and well
            // conditioned regardless of the draws.
            t.push((i, i, off_sum + 1.0 + val.next_f64()));
        }
    }
    for _ in 0..coupling {
        if n_blocks < 2 {
            break;
        }
        let b = 1 + (topo.next_u64() % (n_blocks as u64 - 1)) as usize;
        let r = starts[b] + (topo.next_u64() % sizes[b] as u64) as usize;
        let c = (topo.next_u64() % starts[b] as u64) as usize;
        t.push((r, c, 2.0 * val.next_f64() - 1.0));
    }
    if scale_rows {
        let scales: Vec<f64> = (0..n)
            .map(|_| 10f64.powi((val.next_u64() % 13) as i32 - 6))
            .collect();
        for e in &mut t {
            e.2 *= scales[e.0];
        }
    }
    let rp = random_perm(n, &mut topo);
    let cp = random_perm(n, &mut topo);
    for e in &mut t {
        *e = (rp[e.0], cp[e.1], e.2);
    }
    (t, n)
}

/// Uniform random permutation of `0..n` (Fisher–Yates over `rng`).
fn random_perm(n: usize, rng: &mut TestRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Builds the triplets of a random MNA-shaped system: every node has a
/// grounded conductance (so the conductance block is nonsingular),
/// `n_edges` random node-to-node conductances, and `n_vs` voltage-source
/// border rows attached to distinct nodes. The *pattern* is drawn from
/// `topo_seed` and the *values* from `value_seed`, so two calls sharing
/// `topo_seed` produce the same sparsity pattern in the same order — that
/// second result exercises `SparseLu::refactor`.
fn random_mna_triplets(
    n_nodes: usize,
    n_vs: usize,
    n_edges: usize,
    topo_seed: u64,
    value_seed: u64,
) -> (Vec<(usize, usize, f64)>, usize) {
    let n = n_nodes + n_vs;
    let mut topo = TestRng::seed_from(topo_seed);
    let mut val = TestRng::seed_from(value_seed);
    let mut t = Vec::new();
    for i in 0..n_nodes {
        // Grounded conductance: only a diagonal contribution.
        t.push((i, i, 0.1 + 10.0 * val.next_f64()));
    }
    for _ in 0..n_edges {
        let a = (topo.next_u64() % n_nodes as u64) as usize;
        let bn = (topo.next_u64() % n_nodes as u64) as usize;
        let g = 0.1 + 10.0 * val.next_f64();
        if a == bn {
            continue; // self-edge: no off-diagonal stamp
        }
        t.push((a, a, g));
        t.push((bn, bn, g));
        t.push((a, bn, -g));
        t.push((bn, a, -g));
    }
    for k in 0..n_vs {
        // Source k forces node k: unit border entries, like a real
        // voltage-source stamp (makes the system indefinite, which is
        // what exercises the pivoting).
        t.push((k, n_nodes + k, 1.0));
        t.push((n_nodes + k, k, 1.0));
    }
    (t, n)
}

fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = TestRng::seed_from(seed);
    (0..n).map(|_| 2.0 * rng.next_f64() - 1.0).collect()
}

fn dense_solve(n: usize, triplets: &[(usize, usize, f64)], b: &[f64]) -> Vec<f64> {
    let mut a = Matrix::zeros(n, n);
    for &(i, j, v) in triplets {
        a[(i, j)] += v;
    }
    LuFactors::factor(a).unwrap().solve(b).unwrap()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * scale,
            "component {i}: sparse {x} vs dense {y} (scale {scale})"
        );
    }
}
