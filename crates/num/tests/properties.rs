//! Property-based tests for the numeric foundations.

use proptest::prelude::*;
use rotsv_num::linsolve::LuFactors;
use rotsv_num::matrix::Matrix;
use rotsv_num::rng::GaussianRng;
use rotsv_num::stats::{percentile, point_overlap, range_overlap, Summary};

fn random_dd_matrix(n: usize, seed: u64) -> Matrix {
    // Diagonally dominant => well conditioned and nonsingular.
    let mut rng = GaussianRng::seed_from(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.standard_normal();
                a[(i, j)] = v;
                row_sum += v.abs();
            }
        }
        a[(i, i)] = row_sum + 1.0 + rng.standard_normal().abs();
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LU solves random diagonally-dominant systems to tight residuals.
    #[test]
    fn lu_residual_is_tiny(n in 1usize..40, seed in 0u64..1000) {
        let a = random_dd_matrix(n, seed);
        let mut rng = GaussianRng::seed_from(seed ^ 0xABCD);
        let b: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let lu = LuFactors::factor(a.clone()).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for i in 0..n {
            prop_assert!((r[i] - b[i]).abs() < 1e-9, "row {i}: {} vs {}", r[i], b[i]);
        }
    }

    /// Solving A·x for x recovered from A·x0 returns x0 (round trip).
    #[test]
    fn lu_round_trips(n in 1usize..30, seed in 0u64..1000) {
        let a = random_dd_matrix(n, seed);
        let mut rng = GaussianRng::seed_from(seed.wrapping_add(17));
        let x0: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let b = a.mul_vec(&x0);
        let x = LuFactors::factor(a).unwrap().solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - x0[i]).abs() < 1e-8);
        }
    }

    /// Summary invariants: min ≤ mean ≤ max, std ≥ 0.
    #[test]
    fn summary_invariants(data in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, data.len());
    }

    /// Overlap metrics are symmetric and bounded in [0, 1].
    #[test]
    fn overlap_symmetry_and_bounds(
        a in prop::collection::vec(-100.0..100.0f64, 2..50),
        b in prop::collection::vec(-100.0..100.0f64, 2..50),
    ) {
        let r1 = range_overlap(&a, &b);
        let r2 = range_overlap(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&r1));
        let p1 = point_overlap(&a, &b);
        let p2 = point_overlap(&b, &a);
        prop_assert!((p1 - p2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&p1));
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone(data in prop::collection::vec(-1e3..1e3f64, 1..100)) {
        let s = Summary::of(&data);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let q = percentile(&data, p);
            prop_assert!(q >= prev - 1e-12);
            prop_assert!(q >= s.min - 1e-12 && q <= s.max + 1e-12);
            prev = q;
        }
    }
}
