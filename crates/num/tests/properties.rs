//! Property-based tests for the numeric foundations.

use proptest::prelude::*;
use proptest::TestRng;
use rotsv_num::linsolve::LuFactors;
use rotsv_num::matrix::Matrix;
use rotsv_num::rng::GaussianRng;
use rotsv_num::sparse::{SparseLu, SparseMatrix};
use rotsv_num::stats::{percentile, point_overlap, range_overlap, Summary};

fn random_dd_matrix(n: usize, seed: u64) -> Matrix {
    // Diagonally dominant => well conditioned and nonsingular.
    let mut rng = GaussianRng::seed_from(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.standard_normal();
                a[(i, j)] = v;
                row_sum += v.abs();
            }
        }
        a[(i, i)] = row_sum + 1.0 + rng.standard_normal().abs();
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LU solves random diagonally-dominant systems to tight residuals.
    #[test]
    fn lu_residual_is_tiny(n in 1usize..40, seed in 0u64..1000) {
        let a = random_dd_matrix(n, seed);
        let mut rng = GaussianRng::seed_from(seed ^ 0xABCD);
        let b: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let lu = LuFactors::factor(a.clone()).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for i in 0..n {
            prop_assert!((r[i] - b[i]).abs() < 1e-9, "row {i}: {} vs {}", r[i], b[i]);
        }
    }

    /// Solving A·x for x recovered from A·x0 returns x0 (round trip).
    #[test]
    fn lu_round_trips(n in 1usize..30, seed in 0u64..1000) {
        let a = random_dd_matrix(n, seed);
        let mut rng = GaussianRng::seed_from(seed.wrapping_add(17));
        let x0: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let b = a.mul_vec(&x0);
        let x = LuFactors::factor(a).unwrap().solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - x0[i]).abs() < 1e-8);
        }
    }

    /// Summary invariants: min ≤ mean ≤ max, std ≥ 0.
    #[test]
    fn summary_invariants(data in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, data.len());
    }

    /// Overlap metrics are symmetric and bounded in [0, 1].
    #[test]
    fn overlap_symmetry_and_bounds(
        a in prop::collection::vec(-100.0..100.0f64, 2..50),
        b in prop::collection::vec(-100.0..100.0f64, 2..50),
    ) {
        let r1 = range_overlap(&a, &b);
        let r2 = range_overlap(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&r1));
        let p1 = point_overlap(&a, &b);
        let p2 = point_overlap(&b, &a);
        prop_assert!((p1 - p2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&p1));
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone(data in prop::collection::vec(-1e3..1e3f64, 1..100)) {
        let s = Summary::of(&data);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let q = percentile(&data, p);
            prop_assert!(q >= prev - 1e-12);
            prop_assert!(q >= s.min - 1e-12 && q <= s.max + 1e-12);
            prev = q;
        }
    }

    /// Sparse LU agrees with the dense reference to 1e-12 on random
    /// MNA-shaped systems (conductance block plus voltage-source border),
    /// both on the first factorization and after a value-only refactor.
    #[test]
    fn sparse_lu_matches_dense_on_mna_systems(
        n_nodes in 2usize..24,
        n_vs in 0usize..3,
        n_edges in 0usize..40,
        seed in 0u64..400,
    ) {
        let n_vs = n_vs.min(n_nodes);
        let (triplets, n) = random_mna_triplets(n_nodes, n_vs, n_edges, seed, seed ^ 0xA11);
        let b = random_rhs(n, seed ^ 0xB0B);

        let sparse = SparseMatrix::from_triplets(n, &triplets);
        let mut lu = SparseLu::new(&sparse).unwrap();
        let x_sparse = lu.solve(&b).unwrap();
        let x_dense = dense_solve(n, &triplets, &b);
        assert_close(&x_sparse, &x_dense, 1e-12);

        // Same topology seed => same pattern; new values: the refactor
        // path must agree with a fresh dense solve too.
        let (triplets2, _) = random_mna_triplets(n_nodes, n_vs, n_edges, seed, seed ^ 0xF00D);
        let sparse2 = SparseMatrix::from_triplets(n, &triplets2);
        lu.refactor(&sparse2).unwrap();
        let x_sparse2 = lu.solve(&b).unwrap();
        let x_dense2 = dense_solve(n, &triplets2, &b);
        assert_close(&x_sparse2, &x_dense2, 1e-12);
    }
}

/// Builds the triplets of a random MNA-shaped system: every node has a
/// grounded conductance (so the conductance block is nonsingular),
/// `n_edges` random node-to-node conductances, and `n_vs` voltage-source
/// border rows attached to distinct nodes. The *pattern* is drawn from
/// `topo_seed` and the *values* from `value_seed`, so two calls sharing
/// `topo_seed` produce the same sparsity pattern in the same order — that
/// second result exercises `SparseLu::refactor`.
fn random_mna_triplets(
    n_nodes: usize,
    n_vs: usize,
    n_edges: usize,
    topo_seed: u64,
    value_seed: u64,
) -> (Vec<(usize, usize, f64)>, usize) {
    let n = n_nodes + n_vs;
    let mut topo = TestRng::seed_from(topo_seed);
    let mut val = TestRng::seed_from(value_seed);
    let mut t = Vec::new();
    for i in 0..n_nodes {
        // Grounded conductance: only a diagonal contribution.
        t.push((i, i, 0.1 + 10.0 * val.next_f64()));
    }
    for _ in 0..n_edges {
        let a = (topo.next_u64() % n_nodes as u64) as usize;
        let bn = (topo.next_u64() % n_nodes as u64) as usize;
        let g = 0.1 + 10.0 * val.next_f64();
        if a == bn {
            continue; // self-edge: no off-diagonal stamp
        }
        t.push((a, a, g));
        t.push((bn, bn, g));
        t.push((a, bn, -g));
        t.push((bn, a, -g));
    }
    for k in 0..n_vs {
        // Source k forces node k: unit border entries, like a real
        // voltage-source stamp (makes the system indefinite, which is
        // what exercises the pivoting).
        t.push((k, n_nodes + k, 1.0));
        t.push((n_nodes + k, k, 1.0));
    }
    (t, n)
}

fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = TestRng::seed_from(seed);
    (0..n).map(|_| 2.0 * rng.next_f64() - 1.0).collect()
}

fn dense_solve(n: usize, triplets: &[(usize, usize, f64)], b: &[f64]) -> Vec<f64> {
    let mut a = Matrix::zeros(n, n);
    for &(i, j, v) in triplets {
        a[(i, j)] += v;
    }
    LuFactors::factor(a).unwrap().solve(b).unwrap()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * scale,
            "component {i}: sparse {x} vs dense {y} (scale {scale})"
        );
    }
}
