//! Structure-aware sparse linear algebra for MNA systems.
//!
//! Modified-nodal-analysis matrices are extremely sparse: every circuit
//! element touches a handful of entries, so a ring-oscillator system with
//! `n` unknowns has O(n) nonzeros, not O(n²). Crucially, the *pattern* of
//! those nonzeros is fixed by the netlist topology — Newton iterations,
//! time steps and Monte-Carlo samples only change the *values*. This
//! module exploits that:
//!
//! * [`SparseMatrix`] — compressed sparse row storage built once from the
//!   stamp coordinates, then refilled in place via slot indices,
//! * [`SparseLu`] — an LU factorization that performs the expensive
//!   pivot-order search and fill-in (symbolic) analysis **once** and then
//!   [`SparseLu::refactor`]s with the reused pivot order at O(nnz(LU))
//!   cost per Newton iteration,
//! * [`SolverStats`] — counters threaded from the linear solver through
//!   the simulator up to the Monte-Carlo harness, so every experiment can
//!   report how much numerical work it did.
//!
//! See `PERFORMANCE.md` at the repository root for the measured cost
//! model (why this wins at ring sizes N = 5..50).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::linsolve::{LuFactors, SolveError};
use crate::matrix::Matrix;

/// A square sparse matrix in compressed sparse row (CSR) form.
///
/// Built once from the coordinate list of an assembly pass; afterwards
/// the pattern is frozen and values are updated in place through the
/// slot indices returned by [`SparseMatrix::from_coords`].
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::SparseMatrix;
///
/// // | 2 1 |   coordinate list in stamp order, duplicates accumulate
/// // | 1 3 |
/// let coords = [(0, 0), (0, 1), (1, 0), (1, 1), (0, 0)];
/// let (mut a, slots) = SparseMatrix::from_coords(2, &coords);
/// for (k, &v) in [1.0, 1.0, 1.0, 3.0, 1.0].iter().enumerate() {
///     a.add_slot(slots[k], v); // the two (0,0) stamps accumulate to 2
/// }
/// assert_eq!(a.get(0, 0), 2.0);
/// assert_eq!(a.nnz(), 4);
/// assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds the pattern of an `n × n` matrix from a coordinate list and
    /// returns, for every coordinate occurrence, the index of its value
    /// slot (duplicates map to the same slot and accumulate under
    /// [`SparseMatrix::add_slot`]).
    ///
    /// Values start at zero.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_coords(n: usize, coords: &[(usize, usize)]) -> (Self, Vec<usize>) {
        for &(i, j) in coords {
            assert!(
                i < n && j < n,
                "coordinate ({i}, {j}) out of range for n = {n}"
            );
        }
        // Count unique entries per row via sort-free bucketing.
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j) in coords {
            per_row[i].push(j);
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for cols in &mut per_row {
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len());
        }
        let values = vec![0.0; col_idx.len()];
        let m = Self {
            n,
            row_ptr,
            col_idx,
            values,
        };
        let slots = coords
            .iter()
            .map(|&(i, j)| m.slot_of(i, j).expect("coordinate was just inserted"))
            .collect();
        (m, slots)
    }

    /// Builds a matrix from explicit `(row, col, value)` triplets
    /// (duplicates accumulate). Convenience for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let coords: Vec<(usize, usize)> = triplets.iter().map(|&(i, j, _)| (i, j)).collect();
        let (mut m, slots) = Self::from_coords(n, &coords);
        for (k, &(_, _, v)) in triplets.iter().enumerate() {
            m.add_slot(slots[k], v);
        }
        m
    }

    /// Dimension of the (square) matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Resets every stored value to zero, keeping the pattern.
    pub fn zero_values(&mut self) {
        self.values.fill(0.0);
    }

    /// Adds `v` into value slot `slot` (an index from
    /// [`SparseMatrix::from_coords`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn add_slot(&mut self, slot: usize, v: f64) {
        self.values[slot] += v;
    }

    /// The stored values in slot order (parallel to the CSR pattern).
    ///
    /// Callers can snapshot and compare this to detect that a matrix has
    /// not changed since it was last factored.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value slot storing entry `(i, j)`, if the pattern contains it.
    pub fn slot_of(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .binary_search(&j)
            .ok()
            .map(|off| lo + off)
    }

    /// The value at `(i, j)`; zero when outside the pattern.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.slot_of(i, j).map_or(0.0, |s| self.values[s])
    }

    /// Sparse matrix–vector product `y = A·x` into a caller buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length does not match the dimension.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        assert_eq!(y.len(), self.n, "output length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Sparse matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the dimension.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Lane-batched sparse matrix–vector product over `k` lanes sharing
    /// this matrix's sparsity pattern.
    ///
    /// `values` holds the nonzeros lane-interleaved (`values[s*k + lane]`
    /// is slot `s` of lane `lane`), as does `x` per row and `y` on
    /// output. The lane loop is innermost and branch-free so it
    /// autovectorizes; this is the residual kernel of the batched
    /// Newton solver.
    ///
    /// # Panics
    ///
    /// Panics if `values`, `x` or `y` lengths do not match
    /// `nnz()*k` / `n*k` / `n*k`.
    pub fn mul_vec_lanes_into(&self, values: &[f64], k: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            values.len(),
            self.values.len() * k,
            "values length mismatch"
        );
        assert_eq!(x.len(), self.n * k, "vector length mismatch");
        assert_eq!(y.len(), self.n * k, "output length mismatch");
        match k {
            1 => self.mul_vec_lanes_k::<1>(values, x, y),
            2 => self.mul_vec_lanes_k::<2>(values, x, y),
            3 => self.mul_vec_lanes_k::<3>(values, x, y),
            4 => self.mul_vec_lanes_k::<4>(values, x, y),
            5 => self.mul_vec_lanes_k::<5>(values, x, y),
            6 => self.mul_vec_lanes_k::<6>(values, x, y),
            7 => self.mul_vec_lanes_k::<7>(values, x, y),
            8 => self.mul_vec_lanes_k::<8>(values, x, y),
            16 => self.mul_vec_lanes_k::<16>(values, x, y),
            _ => self.mul_vec_lanes_dyn(values, k, x, y),
        }
    }

    /// Monomorphized body of [`SparseMatrix::mul_vec_lanes_into`]: the
    /// per-row accumulator lives in `K` registers instead of memory.
    fn mul_vec_lanes_k<const K: usize>(&self, values: &[f64], x: &[f64], y: &mut [f64]) {
        for i in 0..self.n {
            let mut acc = [0.0; K];
            for s in self.row_ptr[i]..self.row_ptr[i + 1] {
                let col = self.col_idx[s];
                let vs = &values[s * K..(s + 1) * K];
                let xs = &x[col * K..(col + 1) * K];
                for lane in 0..K {
                    acc[lane] += vs[lane] * xs[lane];
                }
            }
            y[i * K..(i + 1) * K].copy_from_slice(&acc);
        }
    }

    /// Fallback for lane counts without a monomorphized kernel.
    fn mul_vec_lanes_dyn(&self, values: &[f64], k: usize, x: &[f64], y: &mut [f64]) {
        for i in 0..self.n {
            let yi = &mut y[i * k..(i + 1) * k];
            yi.fill(0.0);
            for s in self.row_ptr[i]..self.row_ptr[i + 1] {
                let col = self.col_idx[s];
                let vs = &values[s * k..(s + 1) * k];
                let xs = &x[col * k..(col + 1) * k];
                for lane in 0..k {
                    yi[lane] += vs[lane] * xs[lane];
                }
            }
        }
    }

    /// Densifies into a [`Matrix`] (for tests and the one-time pivot
    /// analysis).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Row `i` as parallel `(col_idx, values)` slices.
    fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
}

/// Pivots with magnitude below this are treated as numerically singular.
const PIVOT_EPS: f64 = 1e-300;

/// Refactorization declares pivot drift (and triggers a fresh analysis)
/// when a reused pivot falls this far below its row's largest entry.
const PIVOT_DRIFT_RATIO: f64 = 1e-12;

/// The value-independent part of a sparse LU factorization: pivot order
/// and fill-in pattern.
///
/// The pattern of an MNA matrix is fixed by the netlist topology, so one
/// analysis can be shared — behind an [`Arc`] — by every factorization
/// of that topology: the T1/T2 runs of one ΔT measurement, and all lanes
/// of a [`BatchedLu`]. Produced by [`SymbolicLu::analyze`]; consumed by
/// [`SparseLu::with_symbolic`] and [`BatchedLu::new`].
#[derive(Debug)]
pub struct SymbolicLu {
    n: usize,
    /// Row permutation: position `i` of `P·A` holds original row `perm[i]`.
    perm: Vec<usize>,
    /// CSR pattern of `L + U` (unit-diagonal `L` strictly below, `U` on
    /// and above the diagonal), rows in permuted order, columns sorted.
    lu_row_ptr: Vec<usize>,
    lu_col_idx: Vec<usize>,
    /// Slot of the diagonal entry in each LU row.
    diag_slot: Vec<usize>,
}

impl SymbolicLu {
    /// Analyzes `a`: chooses a pivot order by dense partial pivoting on
    /// the current values and records the fill-in pattern of `L + U`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no usable pivot exists.
    pub fn analyze(a: &SparseMatrix) -> Result<Self, SolveError> {
        let _span = rotsv_obs::span!("lu_analyze", "n" = a.dim());
        // 1. Pivot order from a dense partial-pivoting factorization.
        //    O(n³), but paid once per topology and amortized over every
        //    Newton iteration of every time step that follows.
        let dense = LuFactors::factor(a.to_dense())?;
        let perm = dense.permutation().to_vec();
        let n = a.dim();

        // 2. Symbolic elimination of the permuted pattern: the pattern of
        //    LU row i is the union of row perm[i] of A with the upper
        //    parts of every U row j < i it reaches (Doolittle by rows).
        let mut row_patterns: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut in_row = vec![false; n];
        for i in 0..n {
            let (cols, _) = a.row(perm[i]);
            let mut pattern: Vec<usize> = cols.to_vec();
            for &c in &pattern {
                in_row[c] = true;
            }
            // Walk candidate columns in ascending order; eliminating
            // column j < i merges U row j's pattern in.
            let mut k = 0;
            while k < pattern.len() {
                pattern.sort_unstable();
                let j = pattern[k];
                if j >= i {
                    break;
                }
                for &c in &row_patterns[j] {
                    if c > j && !in_row[c] {
                        in_row[c] = true;
                        pattern.push(c);
                    }
                }
                k += 1;
            }
            pattern.sort_unstable();
            if !in_row[i] {
                // Structurally zero diagonal: still reserve the slot so a
                // numeric value (or the singularity) is detected cleanly.
                in_row[i] = true;
                pattern.push(i);
                pattern.sort_unstable();
            }
            for &c in &pattern {
                in_row[c] = false;
            }
            row_patterns.push(pattern);
        }

        let mut lu_row_ptr = Vec::with_capacity(n + 1);
        let mut lu_col_idx = Vec::new();
        let mut diag_slot = Vec::with_capacity(n);
        lu_row_ptr.push(0);
        for (i, pattern) in row_patterns.iter().enumerate() {
            let base = lu_col_idx.len();
            lu_col_idx.extend_from_slice(pattern);
            let d = pattern
                .binary_search(&i)
                .expect("diagonal is always in the pattern");
            diag_slot.push(base + d);
            lu_row_ptr.push(lu_col_idx.len());
        }

        Ok(Self {
            n,
            perm,
            lu_row_ptr,
            lu_col_idx,
            diag_slot,
        })
    }

    /// Dimension of the analyzed system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of entries in the `L + U` pattern.
    pub fn lu_nnz(&self) -> usize {
        self.lu_col_idx.len()
    }
}

/// Sparse LU factorization with a reusable symbolic analysis.
///
/// Construction ([`SparseLu::new`]) performs the expensive part once: a
/// partial-pivoting factorization chooses the row permutation, and a
/// symbolic elimination of the permuted pattern records the fill-in
/// structure of `L + U`. Subsequent [`SparseLu::refactor`] calls reuse
/// both, reducing the per-iteration cost from O(n³) to O(nnz(LU)) — the
/// dominant win of the simulator's Newton loops, where the matrix values
/// change every iteration but the pattern never does.
///
/// If the values drift so far that a reused pivot becomes unusable,
/// `refactor` transparently falls back to a fresh analysis (and reports
/// it, so [`SolverStats`] can count re-analyses).
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::{SparseLu, SparseMatrix};
///
/// # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
/// let mut a = SparseMatrix::from_triplets(
///     3,
///     &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0), (2, 2, 2.0)],
/// );
/// let mut lu = SparseLu::new(&a)?;
/// let x = lu.solve(&[5.0, 4.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// assert!((x[2] - 1.0).abs() < 1e-12);
///
/// // Same pattern, new values: refactor without re-analysis.
/// a = SparseMatrix::from_triplets(
///     3,
///     &[(0, 0, 2.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 5.0), (2, 2, 1.0)],
/// );
/// let reanalyzed = lu.refactor(&a)?;
/// assert!(!reanalyzed);
/// let x = lu.solve(&[2.0, 5.0, 1.0])?;
/// assert!(x.iter().all(|v| (v - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    /// Shared pivot order and fill-in pattern.
    sym: Arc<SymbolicLu>,
    lu_values: Vec<f64>,
    /// Dense scatter workspace reused by refactor.
    work: Vec<f64>,
}

impl SparseLu {
    /// Analyzes and factors `a`: chooses a pivot order by partial
    /// pivoting, records the fill-in pattern, and computes the numeric
    /// factors.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no usable pivot exists.
    pub fn new(a: &SparseMatrix) -> Result<Self, SolveError> {
        let sym = Arc::new(SymbolicLu::analyze(a)?);
        Self::with_symbolic(sym, a)
    }

    /// Factors `a` reusing an existing symbolic analysis of the same
    /// pattern (no `lu_analyze` is performed).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `a`'s dimension
    /// differs from the analyzed one, and [`SolveError::Singular`] when
    /// the recorded pivot order is unusable for `a`'s values (callers
    /// fall back to a fresh [`SparseLu::new`]).
    pub fn with_symbolic(sym: Arc<SymbolicLu>, a: &SparseMatrix) -> Result<Self, SolveError> {
        if a.dim() != sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: sym.n,
                actual: a.dim(),
            });
        }
        let mut lu = Self {
            lu_values: vec![0.0; sym.lu_nnz()],
            work: vec![0.0; sym.n],
            sym,
        };
        lu.refactor_in_place(a)?;
        Ok(lu)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Number of stored entries in `L + U` (a measure of fill-in).
    pub fn lu_nnz(&self) -> usize {
        self.sym.lu_nnz()
    }

    /// The shared symbolic analysis backing this factorization.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.sym
    }

    /// Recomputes the numeric factors of `a` (same pattern as analyzed)
    /// with the recorded pivot order. Returns `true` when pivot drift
    /// forced a fresh analysis, `false` on the fast path.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when the matrix is numerically
    /// singular even after re-analysis, and
    /// [`SolveError::DimensionMismatch`] if `a` has a different
    /// dimension.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<bool, SolveError> {
        let _span = rotsv_obs::span!("lu_refactor");
        if a.dim() != self.sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.sym.n,
                actual: a.dim(),
            });
        }
        match self.refactor_in_place(a) {
            Ok(()) => Ok(false),
            Err(SolveError::Singular { .. }) => {
                // Values drifted away from the analyzed pivot order: redo
                // the full analysis (new permutation, new fill pattern).
                *self = Self::new(a)?;
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Numeric refactorization along the fixed pattern (Doolittle by
    /// rows with a dense scatter workspace).
    fn refactor_in_place(&mut self, a: &SparseMatrix) -> Result<(), SolveError> {
        let sym = &self.sym;
        for i in 0..sym.n {
            let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
            // Scatter row perm[i] of A over the LU pattern.
            for k in lo..hi {
                self.work[sym.lu_col_idx[k]] = 0.0;
            }
            let (cols, vals) = a.row(sym.perm[i]);
            for (&c, &v) in cols.iter().zip(vals) {
                self.work[c] = v;
            }
            // Eliminate columns j < i in ascending order.
            let mut row_max = 0.0f64;
            for k in lo..sym.diag_slot[i] {
                let j = sym.lu_col_idx[k];
                let ujj = self.lu_values[sym.diag_slot[j]];
                let l = self.work[j] / ujj;
                self.work[j] = l;
                if l != 0.0 {
                    for m in (sym.diag_slot[j] + 1)..sym.lu_row_ptr[j + 1] {
                        self.work[sym.lu_col_idx[m]] -= l * self.lu_values[m];
                    }
                }
            }
            // Gather the finished row and check the pivot.
            for k in lo..hi {
                let v = self.work[sym.lu_col_idx[k]];
                self.lu_values[k] = v;
                row_max = row_max.max(v.abs());
            }
            let piv = self.lu_values[sym.diag_slot[i]].abs();
            if piv <= PIVOT_EPS || !piv.is_finite() || piv < PIVOT_DRIFT_RATIO * row_max {
                return Err(SolveError::Singular { column: i });
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with the current factors.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `b.len()` does not
    /// match the dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let _span = rotsv_obs::span!("lu_solve");
        let sym = &self.sym;
        if b.len() != sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: sym.n,
                actual: b.len(),
            });
        }
        let mut x: Vec<f64> = sym.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 0..sym.n {
            let mut acc = x[i];
            for k in sym.lu_row_ptr[i]..sym.diag_slot[i] {
                acc -= self.lu_values[k] * x[sym.lu_col_idx[k]];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..sym.n).rev() {
            let mut acc = x[i];
            for k in (sym.diag_slot[i] + 1)..sym.lu_row_ptr[i + 1] {
                acc -= self.lu_values[k] * x[sym.lu_col_idx[k]];
            }
            x[i] = acc / self.lu_values[sym.diag_slot[i]];
        }
        Ok(x)
    }
}

/// A process-scoped, topology-keyed cache of symbolic LU analyses.
///
/// Keyed by the exact CSR pattern `(n, row_ptr, col_idx)`, so two
/// matrices share an entry iff they have the same topology. The cache is
/// deliberately *not* global: callers create one per deterministic scope
/// (e.g. one ΔT measurement, whose T1 and T2 transients share a netlist
/// pattern) so that cache hits can never depend on thread scheduling or
/// leak between unrelated runs.
///
/// Sharing is numerically exact for the simulator's use: the first
/// factorization of every transient happens at the zero-voltage initial
/// Newton iterate, where the assembled matrix — and therefore the pivot
/// order a fresh analysis would choose — is identical for every run of
/// the same netlist and die. A cache hit that nevertheless fails the
/// pivot check falls back to a fresh analysis instead of poisoning the
/// scope.
#[derive(Debug, Default)]
pub struct SymbolicCache {
    inner: Mutex<HashMap<PatternKey, Arc<SymbolicLu>>>,
}

#[derive(Debug, Hash, PartialEq, Eq)]
struct PatternKey {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl SymbolicCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct topologies analyzed so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len()
    }

    /// `true` when no topology has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached symbolic analysis for `a`'s pattern, computing and
    /// inserting it on first use. The `bool` is `true` when this call
    /// performed the analysis (callers count it in
    /// [`SolverStats::symbolic_analyses`]).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a required fresh analysis
    /// finds no usable pivot. Failed analyses are not cached.
    pub fn symbolic_for(&self, a: &SparseMatrix) -> Result<(Arc<SymbolicLu>, bool), SolveError> {
        let key = PatternKey {
            n: a.dim(),
            row_ptr: a.row_ptr.clone(),
            col_idx: a.col_idx.clone(),
        };
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(sym) = inner.get(&key) {
            return Ok((Arc::clone(sym), false));
        }
        let sym = Arc::new(SymbolicLu::analyze(a)?);
        inner.insert(key, Arc::clone(&sym));
        Ok((sym, true))
    }

    /// Factors `a`, reusing the cached symbolic analysis of its pattern
    /// when present. Returns the factorization and the number of fresh
    /// analyses this call performed (0 on a clean cache hit, 1 on a
    /// miss — or on a hit whose pivot order proved unusable for `a`'s
    /// values, where a private re-analysis takes over).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when even a fresh analysis
    /// cannot factor `a`.
    pub fn factor(&self, a: &SparseMatrix) -> Result<(SparseLu, u64), SolveError> {
        let (sym, analyzed) = self.symbolic_for(a)?;
        let analyses = u64::from(analyzed);
        match SparseLu::with_symbolic(sym, a) {
            Ok(lu) => Ok((lu, analyses)),
            Err(SolveError::Singular { .. }) => {
                // The shared pivot order does not suit these values; fall
                // back to a private analysis without touching the cache.
                Ok((SparseLu::new(a)?, analyses + 1))
            }
            Err(e) => Err(e),
        }
    }
}

/// A lane-batched sparse LU: one shared symbolic analysis, `k`
/// lane-interleaved value sets factored and solved in lockstep.
///
/// Storage is lane-interleaved (`values[slot * k + lane]`) so the
/// per-slot elimination and substitution loops run over contiguous
/// lanes and autovectorize. All lanes share the pivot order; when one
/// lane's values make that order unusable, the batch transparently
/// re-analyzes from the offending lane — valid for every lane because
/// the pattern is shared — and reports the number of analyses spent.
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::{BatchedLu, SparseMatrix, SymbolicLu};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
/// let a = SparseMatrix::from_triplets(2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 1, 2.0)]);
/// let sym = Arc::new(SymbolicLu::analyze(&a)?);
/// let mut lu = BatchedLu::new(sym, 2);
/// // Lane-interleaved values for two lanes: lane 0 = a, lane 1 = 2a.
/// let vals: Vec<f64> = a.values().iter().flat_map(|&v| [v, 2.0 * v]).collect();
/// lu.refactor(&a, &vals)?;
/// let mut b = vec![5.0, 10.0, 2.0, 4.0]; // rhs per lane, interleaved
/// lu.solve_in_place(&mut b);
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// assert!((b[2] - 1.0).abs() < 1e-12 && (b[3] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchedLu {
    sym: Arc<SymbolicLu>,
    k: usize,
    /// `lu_nnz * k`, lane-interleaved.
    lu_values: Vec<f64>,
    /// `n * k` dense scatter workspace.
    work: Vec<f64>,
    /// `k` multiplier scratch for the elimination inner loop.
    lrow: Vec<f64>,
    /// `n * k` scratch for the permuted solve.
    xbuf: Vec<f64>,
}

impl BatchedLu {
    /// Creates a batched factorization of `k` lanes over a shared
    /// symbolic analysis. Values are supplied per [`BatchedLu::refactor`].
    pub fn new(sym: Arc<SymbolicLu>, k: usize) -> Self {
        assert!(k > 0, "a batch needs at least one lane");
        Self {
            k,
            lu_values: vec![0.0; sym.lu_nnz() * k],
            work: vec![0.0; sym.n * k],
            lrow: vec![0.0; k],
            xbuf: vec![0.0; sym.n * k],
            sym,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// The shared symbolic analysis.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.sym
    }

    /// Refactors all lanes from `values` — `a.nnz() * k` lane-interleaved
    /// entries over `pattern`'s CSR slots. Returns the number of fresh
    /// symbolic analyses performed (0 on the fast path; ≥ 1 when pivot
    /// drift in some lane forced a shared re-analysis).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a lane stays singular after
    /// re-analysis, [`SolveError::DimensionMismatch`] on a pattern of
    /// the wrong dimension.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != pattern.nnz() * lanes`.
    pub fn refactor(&mut self, pattern: &SparseMatrix, values: &[f64]) -> Result<u64, SolveError> {
        let _span = rotsv_obs::span!("lu_refactor_batch", "k" = self.k);
        assert_eq!(
            values.len(),
            pattern.nnz() * self.k,
            "lane-interleaved value length mismatch"
        );
        if pattern.dim() != self.sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.sym.n,
                actual: pattern.dim(),
            });
        }
        let mut analyses = 0u64;
        loop {
            let swept = match self.k {
                1 => self.refactor_lanes_k::<1>(pattern, values),
                2 => self.refactor_lanes_k::<2>(pattern, values),
                3 => self.refactor_lanes_k::<3>(pattern, values),
                4 => self.refactor_lanes_k::<4>(pattern, values),
                5 => self.refactor_lanes_k::<5>(pattern, values),
                6 => self.refactor_lanes_k::<6>(pattern, values),
                7 => self.refactor_lanes_k::<7>(pattern, values),
                8 => self.refactor_lanes_k::<8>(pattern, values),
                16 => self.refactor_lanes_k::<16>(pattern, values),
                _ => self.refactor_lanes(pattern, values),
            };
            match swept {
                Ok(()) => return Ok(analyses),
                Err((lane, SolveError::Singular { .. })) if analyses < 2 => {
                    // The shared pivot order failed for `lane`: re-analyze
                    // from that lane's values. The new order applies to
                    // every lane (the pattern is shared).
                    let mut probe = pattern.clone();
                    probe.zero_values();
                    for s in 0..pattern.nnz() {
                        probe.add_slot(s, values[s * self.k + lane]);
                    }
                    let sym = Arc::new(SymbolicLu::analyze(&probe)?);
                    analyses += 1;
                    self.lu_values = vec![0.0; sym.lu_nnz() * self.k];
                    self.sym = sym;
                }
                Err((_, e)) => return Err(e),
            }
        }
    }

    /// Refactors only the lanes with `mask[lane] == true`, leaving every
    /// other lane's stored factors untouched. This is the entry point for
    /// asynchronous batched transients, where lanes request fresh factors
    /// at different iterations: each lane is swept by a scalar Doolittle
    /// pass with the same per-lane operation order as
    /// [`BatchedLu::refactor`], so a lane's factors are bit-identical no
    /// matter which other lanes factor alongside it.
    ///
    /// Returns `(analyses, invalidated)`: `analyses` counts fresh symbolic
    /// analyses; `invalidated` is `true` when pivot drift in a masked lane
    /// forced a shared re-analysis, which destroys the stored factors of
    /// every *unmasked* lane (the masked ones are refactored under the new
    /// pivot order before returning). The caller must then refresh the
    /// unmasked lanes before their next solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a masked lane stays singular
    /// after re-analysis, [`SolveError::DimensionMismatch`] on a pattern
    /// of the wrong dimension.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != pattern.nnz() * lanes` or
    /// `mask.len() != lanes`.
    pub fn refactor_masked(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
        mask: &[bool],
    ) -> Result<(u64, bool), SolveError> {
        let _span = rotsv_obs::span!("lu_refactor_masked", "k" = self.k);
        assert_eq!(
            values.len(),
            pattern.nnz() * self.k,
            "lane-interleaved value length mismatch"
        );
        assert_eq!(mask.len(), self.k, "mask length mismatch");
        if pattern.dim() != self.sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.sym.n,
                actual: pattern.dim(),
            });
        }
        let mut analyses = 0u64;
        let mut invalidated = false;
        'retry: loop {
            for lane in 0..self.k {
                if !mask[lane] {
                    continue;
                }
                match self.refactor_lane(pattern, values, lane) {
                    Ok(()) => {}
                    Err(SolveError::Singular { .. }) if analyses < 2 => {
                        // The shared pivot order failed for `lane`:
                        // re-analyze from that lane's values. The new order
                        // applies to every lane, so all previously stored
                        // factors are gone.
                        let mut probe = pattern.clone();
                        probe.zero_values();
                        for s in 0..pattern.nnz() {
                            probe.add_slot(s, values[s * self.k + lane]);
                        }
                        let sym = Arc::new(SymbolicLu::analyze(&probe)?);
                        analyses += 1;
                        invalidated = true;
                        self.lu_values = vec![0.0; sym.lu_nnz() * self.k];
                        self.work = vec![0.0; sym.n * self.k];
                        self.xbuf = vec![0.0; sym.n * self.k];
                        self.sym = sym;
                        continue 'retry;
                    }
                    Err(e) => return Err(e),
                }
            }
            return Ok((analyses, invalidated));
        }
    }

    /// Scalar Doolittle sweep of a single lane over the strided storage.
    /// Per-lane operation order matches [`BatchedLu::refactor_lanes`]
    /// exactly (scatter row `perm[i]`, eliminate columns `j < i` in
    /// ascending order, gather, pivot check), so the lane's factors are
    /// bit-identical to a full-batch refactor of the same values.
    fn refactor_lane(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
        lane: usize,
    ) -> Result<(), SolveError> {
        let sym = Arc::clone(&self.sym);
        let k = self.k;
        for i in 0..sym.n {
            let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
            for s in lo..hi {
                self.work[sym.lu_col_idx[s] * k + lane] = 0.0;
            }
            // Scatter row perm[i] of A (this lane only).
            let r = sym.perm[i];
            for s in pattern.row_ptr[r]..pattern.row_ptr[r + 1] {
                self.work[pattern.col_idx[s] * k + lane] = values[s * k + lane];
            }
            // Eliminate columns j < i in ascending order.
            for s in lo..sym.diag_slot[i] {
                let j = sym.lu_col_idx[s];
                let l = self.work[j * k + lane] / self.lu_values[sym.diag_slot[j] * k + lane];
                self.work[j * k + lane] = l;
                for m in (sym.diag_slot[j] + 1)..sym.lu_row_ptr[j + 1] {
                    self.work[sym.lu_col_idx[m] * k + lane] -= l * self.lu_values[m * k + lane];
                }
            }
            // Gather the finished row and check the pivot.
            let mut row_max = 0.0f64;
            for s in lo..hi {
                let v = self.work[sym.lu_col_idx[s] * k + lane];
                self.lu_values[s * k + lane] = v;
                row_max = row_max.max(v.abs());
            }
            let piv = self.lu_values[sym.diag_slot[i] * k + lane].abs();
            if piv <= PIVOT_EPS || !piv.is_finite() || piv < PIVOT_DRIFT_RATIO * row_max {
                return Err(SolveError::Singular { column: i });
            }
        }
        Ok(())
    }

    /// Monomorphized Doolittle sweep: same elimination order as
    /// [`BatchedLu::refactor_lanes`] (bit-identical results), with the
    /// multiplier row in `K` registers and const-length lane loops that
    /// compile to straight vector code.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn refactor_lanes_k<const K: usize>(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
    ) -> Result<(), (usize, SolveError)> {
        debug_assert_eq!(self.k, K);
        let sym = &self.sym;
        for i in 0..sym.n {
            let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
            for s in lo..hi {
                let base = sym.lu_col_idx[s] * K;
                self.work[base..base + K].fill(0.0);
            }
            // Scatter row perm[i] of A (all lanes at once).
            let r = sym.perm[i];
            let (alo, ahi) = (pattern.row_ptr[r], pattern.row_ptr[r + 1]);
            for s in alo..ahi {
                let dst = pattern.col_idx[s] * K;
                self.work[dst..dst + K].copy_from_slice(&values[s * K..(s + 1) * K]);
            }
            // Eliminate columns j < i in ascending order, lanes in lockstep.
            for s in lo..sym.diag_slot[i] {
                let j = sym.lu_col_idx[s];
                let dj = sym.diag_slot[j] * K;
                let mut lrow = [0.0; K];
                for lane in 0..K {
                    let l = self.work[j * K + lane] / self.lu_values[dj + lane];
                    lrow[lane] = l;
                    self.work[j * K + lane] = l;
                }
                for m in (sym.diag_slot[j] + 1)..sym.lu_row_ptr[j + 1] {
                    let dst = sym.lu_col_idx[m] * K;
                    let lum = m * K;
                    for lane in 0..K {
                        self.work[dst + lane] -= lrow[lane] * self.lu_values[lum + lane];
                    }
                }
            }
            // Gather the finished row and check every lane's pivot.
            let mut row_max = [0.0f64; K];
            for s in lo..hi {
                let src = sym.lu_col_idx[s] * K;
                let dst = s * K;
                for lane in 0..K {
                    let v = self.work[src + lane];
                    self.lu_values[dst + lane] = v;
                    row_max[lane] = row_max[lane].max(v.abs());
                }
            }
            let dslot = sym.diag_slot[i] * K;
            for lane in 0..K {
                let piv = self.lu_values[dslot + lane].abs();
                if piv <= PIVOT_EPS || !piv.is_finite() || piv < PIVOT_DRIFT_RATIO * row_max[lane] {
                    return Err((lane, SolveError::Singular { column: i }));
                }
            }
        }
        Ok(())
    }

    /// One Doolittle sweep over all lanes; fails with the first lane
    /// whose pivot is unusable.
    fn refactor_lanes(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
    ) -> Result<(), (usize, SolveError)> {
        let sym = &self.sym;
        let k = self.k;
        for i in 0..sym.n {
            let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
            for s in lo..hi {
                let base = sym.lu_col_idx[s] * k;
                self.work[base..base + k].fill(0.0);
            }
            // Scatter row perm[i] of A (all lanes at once).
            let r = sym.perm[i];
            let (alo, ahi) = (pattern.row_ptr[r], pattern.row_ptr[r + 1]);
            for s in alo..ahi {
                let dst = pattern.col_idx[s] * k;
                self.work[dst..dst + k].copy_from_slice(&values[s * k..(s + 1) * k]);
            }
            // Eliminate columns j < i in ascending order, lanes in lockstep.
            for s in lo..sym.diag_slot[i] {
                let j = sym.lu_col_idx[s];
                let dj = sym.diag_slot[j] * k;
                for lane in 0..k {
                    let l = self.work[j * k + lane] / self.lu_values[dj + lane];
                    self.lrow[lane] = l;
                    self.work[j * k + lane] = l;
                }
                for m in (sym.diag_slot[j] + 1)..sym.lu_row_ptr[j + 1] {
                    let dst = sym.lu_col_idx[m] * k;
                    let lum = m * k;
                    for lane in 0..k {
                        self.work[dst + lane] -= self.lrow[lane] * self.lu_values[lum + lane];
                    }
                }
            }
            // Gather the finished row and check every lane's pivot.
            for s in lo..hi {
                let src = sym.lu_col_idx[s] * k;
                let dst = s * k;
                self.lu_values[dst..dst + k].copy_from_slice(&self.work[src..src + k]);
            }
            let dslot = sym.diag_slot[i] * k;
            for lane in 0..k {
                let mut row_max = 0.0f64;
                for s in lo..hi {
                    row_max = row_max.max(self.lu_values[s * k + lane].abs());
                }
                let piv = self.lu_values[dslot + lane].abs();
                if piv <= PIVOT_EPS || !piv.is_finite() || piv < PIVOT_DRIFT_RATIO * row_max {
                    return Err((lane, SolveError::Singular { column: i }));
                }
            }
        }
        Ok(())
    }

    /// Solves all lanes in place: `b` holds `n * k` lane-interleaved
    /// right-hand sides on entry and the solutions on return.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim * lanes`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) {
        let _span = rotsv_obs::span!("lu_solve_batch", "k" = self.k);
        assert_eq!(
            b.len(),
            self.sym.n * self.k,
            "lane-interleaved rhs length mismatch"
        );
        match self.k {
            1 => self.solve_in_place_k::<1>(b),
            2 => self.solve_in_place_k::<2>(b),
            3 => self.solve_in_place_k::<3>(b),
            4 => self.solve_in_place_k::<4>(b),
            5 => self.solve_in_place_k::<5>(b),
            6 => self.solve_in_place_k::<6>(b),
            7 => self.solve_in_place_k::<7>(b),
            8 => self.solve_in_place_k::<8>(b),
            16 => self.solve_in_place_k::<16>(b),
            _ => self.solve_in_place_dyn(b),
        }
    }

    /// Monomorphized substitution: each row's lanes accumulate in `K`
    /// registers across the inner loops instead of read-modify-write
    /// memory traffic per entry. Same operation order as the dynamic
    /// path, so results are bit-identical.
    // Lane loops deliberately index several parallel arrays by `lane`;
    // the iterator forms clippy suggests obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    fn solve_in_place_k<const K: usize>(&mut self, b: &mut [f64]) {
        debug_assert_eq!(self.k, K);
        let sym = &self.sym;
        // Permute rows (all lanes at once).
        for i in 0..sym.n {
            let src = sym.perm[i] * K;
            self.xbuf[i * K..(i + 1) * K].copy_from_slice(&b[src..src + K]);
        }
        let x = &mut self.xbuf;
        // Forward substitution with unit-diagonal L.
        for i in 0..sym.n {
            let mut acc = [0.0; K];
            acc.copy_from_slice(&x[i * K..(i + 1) * K]);
            for s in sym.lu_row_ptr[i]..sym.diag_slot[i] {
                let c = sym.lu_col_idx[s] * K;
                let lus = s * K;
                for lane in 0..K {
                    acc[lane] -= self.lu_values[lus + lane] * x[c + lane];
                }
            }
            x[i * K..(i + 1) * K].copy_from_slice(&acc);
        }
        // Back substitution with U.
        for i in (0..sym.n).rev() {
            let mut acc = [0.0; K];
            acc.copy_from_slice(&x[i * K..(i + 1) * K]);
            for s in (sym.diag_slot[i] + 1)..sym.lu_row_ptr[i + 1] {
                let c = sym.lu_col_idx[s] * K;
                let lus = s * K;
                for lane in 0..K {
                    acc[lane] -= self.lu_values[lus + lane] * x[c + lane];
                }
            }
            let d = sym.diag_slot[i] * K;
            for lane in 0..K {
                acc[lane] /= self.lu_values[d + lane];
            }
            x[i * K..(i + 1) * K].copy_from_slice(&acc);
        }
        b.copy_from_slice(x);
    }

    /// Fallback for lane counts without a monomorphized kernel.
    fn solve_in_place_dyn(&mut self, b: &mut [f64]) {
        let sym = &self.sym;
        let k = self.k;
        // Permute rows (all lanes at once).
        for i in 0..sym.n {
            let src = sym.perm[i] * k;
            self.xbuf[i * k..(i + 1) * k].copy_from_slice(&b[src..src + k]);
        }
        let x = &mut self.xbuf;
        // Forward substitution with unit-diagonal L.
        for i in 0..sym.n {
            for s in sym.lu_row_ptr[i]..sym.diag_slot[i] {
                let c = sym.lu_col_idx[s] * k;
                let lus = s * k;
                for lane in 0..k {
                    x[i * k + lane] -= self.lu_values[lus + lane] * x[c + lane];
                }
            }
        }
        // Back substitution with U.
        for i in (0..sym.n).rev() {
            for s in (sym.diag_slot[i] + 1)..sym.lu_row_ptr[i + 1] {
                let c = sym.lu_col_idx[s] * k;
                let lus = s * k;
                for lane in 0..k {
                    x[i * k + lane] -= self.lu_values[lus + lane] * x[c + lane];
                }
            }
            let d = sym.diag_slot[i] * k;
            for lane in 0..k {
                x[i * k + lane] /= self.lu_values[d + lane];
            }
        }
        b.copy_from_slice(x);
    }
}

/// Counters describing the numerical work of a simulation.
///
/// Produced by the linear solver and the Newton/transient loops in
/// `rotsv-spice`, aggregated per measurement and per Monte-Carlo
/// population in `rotsv`, and printed by the `experiments` binary.
///
/// Equality is not derived: `wall_seconds` varies run to run, so
/// containers holding stats implement equality over their data only.
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::SolverStats;
///
/// let mut total = SolverStats::default();
/// let step = SolverStats {
///     factorizations: 1,
///     solves: 3,
///     newton_iterations: 3,
///     steps_accepted: 1,
///     ..SolverStats::default()
/// };
/// total.merge(&step);
/// total.merge(&step);
/// assert_eq!(total.solves, 6);
/// assert!(total.summary().contains("newton 6"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Full symbolic + pivot analyses (one per topology, plus pivot-drift
    /// fallbacks).
    pub symbolic_analyses: u64,
    /// Numeric factorizations, including the fast refactorizations.
    pub factorizations: u64,
    /// Triangular solves.
    pub solves: u64,
    /// Newton iterations across all analyses.
    pub newton_iterations: u64,
    /// Accepted integration steps.
    pub steps_accepted: u64,
    /// Rejected integration steps (local-truncation-error control or
    /// Newton failure).
    pub steps_rejected: u64,
    /// Wall-clock time spent inside analyses, seconds.
    pub wall_seconds: f64,
}

impl SolverStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SolverStats) {
        self.symbolic_analyses += other.symbolic_analyses;
        self.factorizations += other.factorizations;
        self.solves += other.solves;
        self.newton_iterations += other.newton_iterations;
        self.steps_accepted += other.steps_accepted;
        self.steps_rejected += other.steps_rejected;
        self.wall_seconds += other.wall_seconds;
    }

    /// Renders the counters as a JSON object (for run manifests and
    /// `--json` experiment output).
    pub fn to_json(&self) -> rotsv_obs::Json {
        use rotsv_obs::Json;
        Json::Obj(vec![
            (
                "symbolic_analyses".into(),
                Json::Num(self.symbolic_analyses as f64),
            ),
            (
                "factorizations".into(),
                Json::Num(self.factorizations as f64),
            ),
            ("solves".into(), Json::Num(self.solves as f64)),
            (
                "newton_iterations".into(),
                Json::Num(self.newton_iterations as f64),
            ),
            (
                "steps_accepted".into(),
                Json::Num(self.steps_accepted as f64),
            ),
            (
                "steps_rejected".into(),
                Json::Num(self.steps_rejected as f64),
            ),
            ("wall_seconds".into(), Json::num_or_null(self.wall_seconds)),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "steps {}+{}r, newton {}, factor {} ({} analyses), solves {}, wall {:.3} s",
            self.steps_accepted,
            self.steps_rejected,
            self.newton_iterations,
            self.factorizations,
            self.symbolic_analyses,
            self.solves,
            self.wall_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(a: &SparseMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, b)| (ax - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn from_coords_dedups_and_accumulates() {
        let coords = [(0, 0), (1, 1), (0, 0), (0, 1)];
        let (mut m, slots) = SparseMatrix::from_coords(2, &coords);
        assert_eq!(m.nnz(), 3);
        assert_eq!(slots[0], slots[2]);
        m.add_slot(slots[0], 1.0);
        m.add_slot(slots[2], 2.0);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, -1.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
            ],
        );
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.mul_vec(&x), m.to_dense().mul_vec(&x));
    }

    #[test]
    fn lu_solves_mna_like_system() {
        // A voltage-divider MNA shape: conductances plus a vsource branch
        // (zero diagonal — exercises pivoting).
        let a = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 2e-3),
                (0, 1, -1e-3),
                (0, 2, 1.0),
                (1, 0, -1e-3),
                (1, 1, 2e-3),
                (2, 0, 1.0),
            ],
        );
        let mut lu = SparseLu::new(&a).unwrap();
        let b = [0.0, 0.0, 2.0];
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-12);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);

        // Refactor with changed conductances, same pattern.
        let a2 = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 3e-3),
                (0, 1, -2e-3),
                (0, 2, 1.0),
                (1, 0, -2e-3),
                (1, 1, 3e-3),
                (2, 0, 1.0),
            ],
        );
        assert!(!lu.refactor(&a2).unwrap());
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn refactor_falls_back_on_pivot_drift() {
        // First values make (0,0) the natural pivot; the second set zeroes
        // it, forcing the reused order to fail and re-analyze.
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let mut lu = SparseLu::new(&a).unwrap();
        let drifted =
            SparseMatrix::from_triplets(2, &[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let reanalyzed = lu.refactor(&drifted).unwrap();
        assert!(reanalyzed);
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!(residual_inf(&drifted, &x, &[1.0, 2.0]) < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        assert!(matches!(
            SparseLu::new(&a),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn fill_in_is_handled() {
        // Arrow matrix: dense last row/col creates fill during elimination.
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + i as f64));
            if i + 1 < n {
                t.push((i, n - 1, 1.0));
                t.push((n - 1, i, 1.0));
            }
        }
        let a = SparseMatrix::from_triplets(n, &t);
        let mut lu = SparseLu::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-12);
        assert!(lu.lu_nnz() >= a.nnz());
        // Refactor with perturbed values still solves tightly.
        let t2: Vec<(usize, usize, f64)> =
            t.iter().map(|&(i, j, v)| (i, j, v * 1.5 + 0.1)).collect();
        let a2 = SparseMatrix::from_triplets(n, &t2);
        lu.refactor(&a2).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut lu = SparseLu::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(SolveError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
        let b = SparseMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        assert!(matches!(
            lu.refactor(&b),
            Err(SolveError::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut s = SolverStats::default();
        s.merge(&SolverStats {
            factorizations: 2,
            newton_iterations: 5,
            wall_seconds: 0.5,
            ..SolverStats::default()
        });
        s.merge(&SolverStats {
            factorizations: 1,
            steps_rejected: 3,
            wall_seconds: 0.25,
            ..SolverStats::default()
        });
        assert_eq!(s.factorizations, 3);
        assert_eq!(s.newton_iterations, 5);
        assert_eq!(s.steps_rejected, 3);
        assert!((s.wall_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn symbolic_cache_counts_one_analysis_per_topology() {
        let cache = SymbolicCache::new();
        let a = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 2e-3),
                (0, 1, -1e-3),
                (0, 2, 1.0),
                (1, 0, -1e-3),
                (1, 1, 2e-3),
                (2, 0, 1.0),
            ],
        );
        // Same pattern, different values — as a second die would assemble.
        let mut a2 = a.clone();
        a2.zero_values();
        for s in 0..a.nnz() {
            a2.add_slot(s, a.values()[s] * 1.3);
        }
        let (lu, n1) = cache.factor(&a).unwrap();
        let (lu2, n2) = cache.factor(&a2).unwrap();
        assert_eq!((n1, n2), (1, 0), "second factor must hit the cache");
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(lu.symbolic(), lu2.symbolic()));
        let b = [0.0, 0.0, 2.0];
        assert!(residual_inf(&a, &lu.solve(&b).unwrap(), &b) < 1e-12);
        assert!(residual_inf(&a2, &lu2.solve(&b).unwrap(), &b) < 1e-12);

        // A different topology gets its own analysis.
        let c = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let (_, n3) = cache.factor(&c).unwrap();
        assert_eq!(n3, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn symbolic_cache_reanalyzes_when_shared_pivots_fail() {
        // First matrix pivots naturally at (0,0); the second zeroes that
        // entry so the cached order is unusable and a private analysis
        // (counted, not cached) must take over.
        let cache = SymbolicCache::new();
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let (_, n1) = cache.factor(&a).unwrap();
        let drifted =
            SparseMatrix::from_triplets(2, &[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let (lu, n2) = cache.factor(&drifted).unwrap();
        assert_eq!((n1, n2), (1, 1), "hit + pivot fallback = one analysis");
        assert_eq!(cache.len(), 1, "fallback analysis must not poison cache");
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!(residual_inf(&drifted, &x, &[1.0, 2.0]) < 1e-12);
    }

    #[test]
    fn cached_factor_matches_fresh_factor_bitwise() {
        // `with_symbolic` over a cached analysis must produce the same
        // factors a fresh `SparseLu::new` would — the bit-neutrality the
        // scalar engine's per-measurement sharing relies on.
        let a = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 2e-3),
                (0, 1, -1e-3),
                (0, 2, 1.0),
                (1, 0, -1e-3),
                (1, 1, 2e-3),
                (2, 0, 1.0),
            ],
        );
        let cache = SymbolicCache::new();
        cache.symbolic_for(&a).unwrap();
        let (cached, _) = cache.factor(&a).unwrap();
        let fresh = SparseLu::new(&a).unwrap();
        let b = [0.25, -1.5, 3.0];
        assert_eq!(
            cached.solve(&b).unwrap(),
            fresh.solve(&b).unwrap(),
            "shared symbolic analysis must be bit-neutral"
        );
    }

    #[test]
    fn mul_vec_lanes_matches_scalar_mul_vec() {
        let a = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 2, -1.0),
                (1, 1, 3.0),
                (2, 0, 0.5),
                (2, 2, 4.0),
            ],
        );
        let k = 2;
        let scale = [1.0, -0.3];
        let mut vals = Vec::with_capacity(a.nnz() * k);
        for s in 0..a.nnz() {
            for &sc in &scale {
                vals.push(a.values()[s] * sc);
            }
        }
        let x = [1.0, -2.0, 0.25];
        let xi: Vec<f64> = x.iter().flat_map(|&v| vec![v, 2.0 * v]).collect();
        let mut y = vec![0.0; 3 * k];
        a.mul_vec_lanes_into(&vals, k, &xi, &mut y);
        let y0 = a.mul_vec(&x);
        for i in 0..3 {
            assert!((y[i * k] - y0[i] * scale[0]).abs() < 1e-15);
            assert!((y[i * k + 1] - y0[i] * scale[1] * 2.0).abs() < 1e-15);
        }
    }

    #[test]
    fn batched_lu_matches_per_lane_scalar_lu() {
        // MNA-shaped system with fill, three lanes of perturbed values.
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + i as f64));
            if i + 1 < n {
                t.push((i, n - 1, 1.0));
                t.push((n - 1, i, 1.0));
            }
        }
        let a = SparseMatrix::from_triplets(n, &t);
        let k = 3;
        let scale = [1.0, 1.07, 0.91];
        let mut vals = Vec::with_capacity(a.nnz() * k);
        for s in 0..a.nnz() {
            for &sc in &scale {
                vals.push(a.values()[s] * sc);
            }
        }
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
        let mut blu = BatchedLu::new(Arc::clone(&sym), k);
        assert_eq!(blu.refactor(&a, &vals).unwrap(), 0);

        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let mut bb: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
        blu.solve_in_place(&mut bb);

        for (lane, sc) in scale.iter().enumerate() {
            let mut al = a.clone();
            al.zero_values();
            for s in 0..a.nnz() {
                al.add_slot(s, a.values()[s] * sc);
            }
            let lu = SparseLu::with_symbolic(Arc::clone(&sym), &al).unwrap();
            let want = lu.solve(&b).unwrap();
            for i in 0..n {
                assert!(
                    (bb[i * k + lane] - want[i]).abs() < 1e-12,
                    "lane {lane} row {i}: {} vs {}",
                    bb[i * k + lane],
                    want[i]
                );
            }
        }
    }

    /// Every monomorphized lane width (and one dynamic-fallback width)
    /// must produce the same solutions: the dispatch arm is a codegen
    /// choice, not a numerical one.
    #[test]
    fn batched_lu_widths_match_per_lane_scalar_lu() {
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + i as f64));
            if i + 1 < n {
                t.push((i, n - 1, 1.0));
                t.push((n - 1, i, 1.0));
            }
        }
        let a = SparseMatrix::from_triplets(n, &t);
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        for k in [1usize, 2, 4, 8, 16, 11] {
            let scale: Vec<f64> = (0..k).map(|l| 1.0 + 0.03 * l as f64).collect();
            let mut vals = Vec::with_capacity(a.nnz() * k);
            for s in 0..a.nnz() {
                for &sc in &scale {
                    vals.push(a.values()[s] * sc);
                }
            }
            let mut blu = BatchedLu::new(Arc::clone(&sym), k);
            assert_eq!(blu.refactor(&a, &vals).unwrap(), 0);
            let mut bb: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
            blu.solve_in_place(&mut bb);
            for (lane, sc) in scale.iter().enumerate() {
                let mut al = a.clone();
                al.zero_values();
                for s in 0..a.nnz() {
                    al.add_slot(s, a.values()[s] * sc);
                }
                let lu = SparseLu::with_symbolic(Arc::clone(&sym), &al).unwrap();
                let want = lu.solve(&b).unwrap();
                for i in 0..n {
                    assert!(
                        (bb[i * k + lane] - want[i]).abs() < 1e-12,
                        "k {k} lane {lane} row {i}: {} vs {}",
                        bb[i * k + lane],
                        want[i]
                    );
                }
            }
        }
    }

    #[test]
    fn batched_lu_reanalyzes_from_the_offending_lane() {
        // Lane 1 zeroes the entry the shared pivot order leads with; the
        // batch must re-analyze once and still solve every lane.
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
        let k = 2;
        let lane_vals = [[5.0, 1.0, 1.0, 0.1], [0.0, 1.0, 1.0, 0.1]];
        let vals: Vec<f64> = (0..a.nnz())
            .flat_map(|s| (0..k).map(move |lane| lane_vals[lane][s]))
            .collect();
        let mut blu = BatchedLu::new(sym, k);
        let analyses = blu.refactor(&a, &vals).unwrap();
        assert_eq!(analyses, 1);

        let rhs = [1.0, 2.0];
        let mut bb: Vec<f64> = rhs.iter().flat_map(|&v| vec![v; k]).collect();
        blu.solve_in_place(&mut bb);
        for lane in 0..k {
            let al = SparseMatrix::from_triplets(
                2,
                &[
                    (0, 0, lane_vals[lane][0]),
                    (0, 1, lane_vals[lane][1]),
                    (1, 0, lane_vals[lane][2]),
                    (1, 1, lane_vals[lane][3]),
                ],
            );
            let x: Vec<f64> = (0..2).map(|i| bb[i * k + lane]).collect();
            assert!(residual_inf(&al, &x, &rhs) < 1e-12, "lane {lane}");
        }
    }

    /// A masked, lane-at-a-time refactor must store bit-identical factors
    /// to one full-batch sweep of the same values — this is what lets the
    /// asynchronous engine refresh lanes at different iterations without
    /// perturbing their trajectories.
    #[test]
    fn masked_refactor_is_bit_identical_to_full_refactor() {
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + i as f64));
            if i + 1 < n {
                t.push((i, n - 1, 1.0));
                t.push((n - 1, i, 1.0));
            }
        }
        let a = SparseMatrix::from_triplets(n, &t);
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        for k in [1usize, 3, 4, 16] {
            let scale: Vec<f64> = (0..k).map(|l| 1.0 + 0.03 * l as f64).collect();
            let mut vals = Vec::with_capacity(a.nnz() * k);
            for s in 0..a.nnz() {
                for &sc in &scale {
                    vals.push(a.values()[s] * sc);
                }
            }
            let mut full = BatchedLu::new(Arc::clone(&sym), k);
            assert_eq!(full.refactor(&a, &vals).unwrap(), 0);
            let mut masked = BatchedLu::new(Arc::clone(&sym), k);
            // Refresh lanes one at a time, in scrambled order.
            for lane in (0..k).rev() {
                let mut mask = vec![false; k];
                mask[lane] = true;
                let (analyses, invalidated) = masked.refactor_masked(&a, &vals, &mask).unwrap();
                assert_eq!(analyses, 0);
                assert!(!invalidated);
            }
            let mut x_full: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
            let mut x_masked = x_full.clone();
            full.solve_in_place(&mut x_full);
            masked.solve_in_place(&mut x_masked);
            assert_eq!(x_full, x_masked, "k {k}: masked factors drifted");
        }
    }

    /// Pivot drift in a masked lane forces a shared re-analysis, which the
    /// call must report so the caller can refresh the unmasked lanes.
    #[test]
    fn masked_refactor_reports_invalidation_on_reanalysis() {
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
        let k = 2;
        let lane_vals = [[5.0, 1.0, 1.0, 0.1], [0.0, 1.0, 1.0, 0.1]];
        let vals: Vec<f64> = (0..a.nnz())
            .flat_map(|s| (0..k).map(move |lane| lane_vals[lane][s]))
            .collect();
        let mut blu = BatchedLu::new(sym, k);
        // Lane 0 factors fine under the original order.
        let (analyses, invalidated) = blu.refactor_masked(&a, &vals, &[true, false]).unwrap();
        assert_eq!((analyses, invalidated), (0, false));
        // Lane 1 needs a new pivot order: lane 0's factors are now gone.
        let (analyses, invalidated) = blu.refactor_masked(&a, &vals, &[false, true]).unwrap();
        assert_eq!(analyses, 1);
        assert!(invalidated);
        // Refreshing lane 0 under the new order restores a solvable batch.
        let (analyses, _) = blu.refactor_masked(&a, &vals, &[true, false]).unwrap();
        assert_eq!(analyses, 0);
        let rhs = [1.0, 2.0];
        let mut bb: Vec<f64> = rhs.iter().flat_map(|&v| vec![v; k]).collect();
        blu.solve_in_place(&mut bb);
        for lane in 0..k {
            let al = SparseMatrix::from_triplets(
                2,
                &[
                    (0, 0, lane_vals[lane][0]),
                    (0, 1, lane_vals[lane][1]),
                    (1, 0, lane_vals[lane][2]),
                    (1, 1, lane_vals[lane][3]),
                ],
            );
            let x: Vec<f64> = (0..2).map(|i| bb[i * k + lane]).collect();
            assert!(residual_inf(&al, &x, &rhs) < 1e-12, "lane {lane}");
        }
    }

    #[test]
    fn batched_lu_reports_singular_lane() {
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 3.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)]);
        // Lane 0 is fine (identity-ish), lane 1 is genuinely singular.
        let lane_vals = [[1.0, 0.0, 0.0, 1.0], [1.0, 2.0, 2.0, 4.0]];
        let vals: Vec<f64> = (0..a.nnz())
            .flat_map(|s| (0..2).map(move |lane| lane_vals[lane][s]))
            .collect();
        let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
        let mut blu = BatchedLu::new(sym, 2);
        assert!(matches!(
            blu.refactor(&a, &vals),
            Err(SolveError::Singular { .. })
        ));
    }
}
