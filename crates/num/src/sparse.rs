//! Structure-aware sparse linear algebra for MNA systems.
//!
//! Modified-nodal-analysis matrices are extremely sparse: every circuit
//! element touches a handful of entries, so a ring-oscillator system with
//! `n` unknowns has O(n) nonzeros, not O(n²). Crucially, the *pattern* of
//! those nonzeros is fixed by the netlist topology — Newton iterations,
//! time steps and Monte-Carlo samples only change the *values*. This
//! module exploits that:
//!
//! * [`SparseMatrix`] — compressed sparse row storage built once from the
//!   stamp coordinates, then refilled in place via slot indices,
//! * [`SparseLu`] — an LU factorization that performs the expensive
//!   pivot-order search and fill-in (symbolic) analysis **once** and then
//!   [`SparseLu::refactor`]s with the reused pivot order at O(nnz(LU))
//!   cost per Newton iteration,
//! * [`SolverStats`] — counters threaded from the linear solver through
//!   the simulator up to the Monte-Carlo harness, so every experiment can
//!   report how much numerical work it did.
//!
//! See `PERFORMANCE.md` at the repository root for the measured cost
//! model (why this wins at ring sizes N = 5..50).

use crate::linsolve::{LuFactors, SolveError};
use crate::matrix::Matrix;

/// A square sparse matrix in compressed sparse row (CSR) form.
///
/// Built once from the coordinate list of an assembly pass; afterwards
/// the pattern is frozen and values are updated in place through the
/// slot indices returned by [`SparseMatrix::from_coords`].
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::SparseMatrix;
///
/// // | 2 1 |   coordinate list in stamp order, duplicates accumulate
/// // | 1 3 |
/// let coords = [(0, 0), (0, 1), (1, 0), (1, 1), (0, 0)];
/// let (mut a, slots) = SparseMatrix::from_coords(2, &coords);
/// for (k, &v) in [1.0, 1.0, 1.0, 3.0, 1.0].iter().enumerate() {
///     a.add_slot(slots[k], v); // the two (0,0) stamps accumulate to 2
/// }
/// assert_eq!(a.get(0, 0), 2.0);
/// assert_eq!(a.nnz(), 4);
/// assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds the pattern of an `n × n` matrix from a coordinate list and
    /// returns, for every coordinate occurrence, the index of its value
    /// slot (duplicates map to the same slot and accumulate under
    /// [`SparseMatrix::add_slot`]).
    ///
    /// Values start at zero.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_coords(n: usize, coords: &[(usize, usize)]) -> (Self, Vec<usize>) {
        for &(i, j) in coords {
            assert!(
                i < n && j < n,
                "coordinate ({i}, {j}) out of range for n = {n}"
            );
        }
        // Count unique entries per row via sort-free bucketing.
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j) in coords {
            per_row[i].push(j);
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for cols in &mut per_row {
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len());
        }
        let values = vec![0.0; col_idx.len()];
        let m = Self {
            n,
            row_ptr,
            col_idx,
            values,
        };
        let slots = coords
            .iter()
            .map(|&(i, j)| m.slot_of(i, j).expect("coordinate was just inserted"))
            .collect();
        (m, slots)
    }

    /// Builds a matrix from explicit `(row, col, value)` triplets
    /// (duplicates accumulate). Convenience for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let coords: Vec<(usize, usize)> = triplets.iter().map(|&(i, j, _)| (i, j)).collect();
        let (mut m, slots) = Self::from_coords(n, &coords);
        for (k, &(_, _, v)) in triplets.iter().enumerate() {
            m.add_slot(slots[k], v);
        }
        m
    }

    /// Dimension of the (square) matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Resets every stored value to zero, keeping the pattern.
    pub fn zero_values(&mut self) {
        self.values.fill(0.0);
    }

    /// Adds `v` into value slot `slot` (an index from
    /// [`SparseMatrix::from_coords`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn add_slot(&mut self, slot: usize, v: f64) {
        self.values[slot] += v;
    }

    /// The stored values in slot order (parallel to the CSR pattern).
    ///
    /// Callers can snapshot and compare this to detect that a matrix has
    /// not changed since it was last factored.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value slot storing entry `(i, j)`, if the pattern contains it.
    pub fn slot_of(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .binary_search(&j)
            .ok()
            .map(|off| lo + off)
    }

    /// The value at `(i, j)`; zero when outside the pattern.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.slot_of(i, j).map_or(0.0, |s| self.values[s])
    }

    /// Sparse matrix–vector product `y = A·x` into a caller buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length does not match the dimension.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        assert_eq!(y.len(), self.n, "output length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Sparse matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the dimension.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Densifies into a [`Matrix`] (for tests and the one-time pivot
    /// analysis).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Row `i` as parallel `(col_idx, values)` slices.
    fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
}

/// Pivots with magnitude below this are treated as numerically singular.
const PIVOT_EPS: f64 = 1e-300;

/// Refactorization declares pivot drift (and triggers a fresh analysis)
/// when a reused pivot falls this far below its row's largest entry.
const PIVOT_DRIFT_RATIO: f64 = 1e-12;

/// Sparse LU factorization with a reusable symbolic analysis.
///
/// Construction ([`SparseLu::new`]) performs the expensive part once: a
/// partial-pivoting factorization chooses the row permutation, and a
/// symbolic elimination of the permuted pattern records the fill-in
/// structure of `L + U`. Subsequent [`SparseLu::refactor`] calls reuse
/// both, reducing the per-iteration cost from O(n³) to O(nnz(LU)) — the
/// dominant win of the simulator's Newton loops, where the matrix values
/// change every iteration but the pattern never does.
///
/// If the values drift so far that a reused pivot becomes unusable,
/// `refactor` transparently falls back to a fresh analysis (and reports
/// it, so [`SolverStats`] can count re-analyses).
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::{SparseLu, SparseMatrix};
///
/// # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
/// let mut a = SparseMatrix::from_triplets(
///     3,
///     &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0), (2, 2, 2.0)],
/// );
/// let mut lu = SparseLu::new(&a)?;
/// let x = lu.solve(&[5.0, 4.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// assert!((x[2] - 1.0).abs() < 1e-12);
///
/// // Same pattern, new values: refactor without re-analysis.
/// a = SparseMatrix::from_triplets(
///     3,
///     &[(0, 0, 2.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 5.0), (2, 2, 1.0)],
/// );
/// let reanalyzed = lu.refactor(&a)?;
/// assert!(!reanalyzed);
/// let x = lu.solve(&[2.0, 5.0, 1.0])?;
/// assert!(x.iter().all(|v| (v - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Row permutation: position `i` of `P·A` holds original row `perm[i]`.
    perm: Vec<usize>,
    /// CSR pattern of `L + U` (unit-diagonal `L` strictly below, `U` on
    /// and above the diagonal), rows in permuted order, columns sorted.
    lu_row_ptr: Vec<usize>,
    lu_col_idx: Vec<usize>,
    lu_values: Vec<f64>,
    /// Slot of the diagonal entry in each LU row.
    diag_slot: Vec<usize>,
    /// Dense scatter workspace reused by refactor.
    work: Vec<f64>,
}

impl SparseLu {
    /// Analyzes and factors `a`: chooses a pivot order by partial
    /// pivoting, records the fill-in pattern, and computes the numeric
    /// factors.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no usable pivot exists.
    pub fn new(a: &SparseMatrix) -> Result<Self, SolveError> {
        let _span = rotsv_obs::span!("lu_analyze", "n" = a.dim());
        // 1. Pivot order from a dense partial-pivoting factorization.
        //    O(n³), but paid once per topology and amortized over every
        //    Newton iteration of every time step that follows.
        let dense = LuFactors::factor(a.to_dense())?;
        let perm = dense.permutation().to_vec();
        let n = a.dim();

        // 2. Symbolic elimination of the permuted pattern: the pattern of
        //    LU row i is the union of row perm[i] of A with the upper
        //    parts of every U row j < i it reaches (Doolittle by rows).
        let mut row_patterns: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut in_row = vec![false; n];
        for i in 0..n {
            let (cols, _) = a.row(perm[i]);
            let mut pattern: Vec<usize> = cols.to_vec();
            for &c in &pattern {
                in_row[c] = true;
            }
            // Walk candidate columns in ascending order; eliminating
            // column j < i merges U row j's pattern in.
            let mut k = 0;
            while k < pattern.len() {
                pattern.sort_unstable();
                let j = pattern[k];
                if j >= i {
                    break;
                }
                for &c in &row_patterns[j] {
                    if c > j && !in_row[c] {
                        in_row[c] = true;
                        pattern.push(c);
                    }
                }
                k += 1;
            }
            pattern.sort_unstable();
            if !in_row[i] {
                // Structurally zero diagonal: still reserve the slot so a
                // numeric value (or the singularity) is detected cleanly.
                in_row[i] = true;
                pattern.push(i);
                pattern.sort_unstable();
            }
            for &c in &pattern {
                in_row[c] = false;
            }
            row_patterns.push(pattern);
        }

        let mut lu_row_ptr = Vec::with_capacity(n + 1);
        let mut lu_col_idx = Vec::new();
        let mut diag_slot = Vec::with_capacity(n);
        lu_row_ptr.push(0);
        for (i, pattern) in row_patterns.iter().enumerate() {
            let base = lu_col_idx.len();
            lu_col_idx.extend_from_slice(pattern);
            let d = pattern
                .binary_search(&i)
                .expect("diagonal is always in the pattern");
            diag_slot.push(base + d);
            lu_row_ptr.push(lu_col_idx.len());
        }

        let mut lu = Self {
            n,
            perm,
            lu_row_ptr,
            lu_values: vec![0.0; lu_col_idx.len()],
            lu_col_idx,
            diag_slot,
            work: vec![0.0; n],
        };
        lu.refactor_in_place(a)?;
        Ok(lu)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries in `L + U` (a measure of fill-in).
    pub fn lu_nnz(&self) -> usize {
        self.lu_col_idx.len()
    }

    /// Recomputes the numeric factors of `a` (same pattern as analyzed)
    /// with the recorded pivot order. Returns `true` when pivot drift
    /// forced a fresh analysis, `false` on the fast path.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when the matrix is numerically
    /// singular even after re-analysis, and
    /// [`SolveError::DimensionMismatch`] if `a` has a different
    /// dimension.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<bool, SolveError> {
        let _span = rotsv_obs::span!("lu_refactor");
        if a.dim() != self.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.n,
                actual: a.dim(),
            });
        }
        match self.refactor_in_place(a) {
            Ok(()) => Ok(false),
            Err(SolveError::Singular { .. }) => {
                // Values drifted away from the analyzed pivot order: redo
                // the full analysis (new permutation, new fill pattern).
                *self = Self::new(a)?;
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Numeric refactorization along the fixed pattern (Doolittle by
    /// rows with a dense scatter workspace).
    fn refactor_in_place(&mut self, a: &SparseMatrix) -> Result<(), SolveError> {
        for i in 0..self.n {
            let (lo, hi) = (self.lu_row_ptr[i], self.lu_row_ptr[i + 1]);
            // Scatter row perm[i] of A over the LU pattern.
            for k in lo..hi {
                self.work[self.lu_col_idx[k]] = 0.0;
            }
            let (cols, vals) = a.row(self.perm[i]);
            for (&c, &v) in cols.iter().zip(vals) {
                self.work[c] = v;
            }
            // Eliminate columns j < i in ascending order.
            let mut row_max = 0.0f64;
            for k in lo..self.diag_slot[i] {
                let j = self.lu_col_idx[k];
                let ujj = self.lu_values[self.diag_slot[j]];
                let l = self.work[j] / ujj;
                self.work[j] = l;
                if l != 0.0 {
                    for m in (self.diag_slot[j] + 1)..self.lu_row_ptr[j + 1] {
                        self.work[self.lu_col_idx[m]] -= l * self.lu_values[m];
                    }
                }
            }
            // Gather the finished row and check the pivot.
            for k in lo..hi {
                let v = self.work[self.lu_col_idx[k]];
                self.lu_values[k] = v;
                row_max = row_max.max(v.abs());
            }
            let piv = self.lu_values[self.diag_slot[i]].abs();
            if piv <= PIVOT_EPS || !piv.is_finite() || piv < PIVOT_DRIFT_RATIO * row_max {
                return Err(SolveError::Singular { column: i });
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with the current factors.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `b.len()` does not
    /// match the dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let _span = rotsv_obs::span!("lu_solve");
        if b.len() != self.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 0..self.n {
            let mut acc = x[i];
            for k in self.lu_row_ptr[i]..self.diag_slot[i] {
                acc -= self.lu_values[k] * x[self.lu_col_idx[k]];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..self.n).rev() {
            let mut acc = x[i];
            for k in (self.diag_slot[i] + 1)..self.lu_row_ptr[i + 1] {
                acc -= self.lu_values[k] * x[self.lu_col_idx[k]];
            }
            x[i] = acc / self.lu_values[self.diag_slot[i]];
        }
        Ok(x)
    }
}

/// Counters describing the numerical work of a simulation.
///
/// Produced by the linear solver and the Newton/transient loops in
/// `rotsv-spice`, aggregated per measurement and per Monte-Carlo
/// population in `rotsv`, and printed by the `experiments` binary.
///
/// Equality is not derived: `wall_seconds` varies run to run, so
/// containers holding stats implement equality over their data only.
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::SolverStats;
///
/// let mut total = SolverStats::default();
/// let step = SolverStats {
///     factorizations: 1,
///     solves: 3,
///     newton_iterations: 3,
///     steps_accepted: 1,
///     ..SolverStats::default()
/// };
/// total.merge(&step);
/// total.merge(&step);
/// assert_eq!(total.solves, 6);
/// assert!(total.summary().contains("newton 6"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Full symbolic + pivot analyses (one per topology, plus pivot-drift
    /// fallbacks).
    pub symbolic_analyses: u64,
    /// Numeric factorizations, including the fast refactorizations.
    pub factorizations: u64,
    /// Triangular solves.
    pub solves: u64,
    /// Newton iterations across all analyses.
    pub newton_iterations: u64,
    /// Accepted integration steps.
    pub steps_accepted: u64,
    /// Rejected integration steps (local-truncation-error control or
    /// Newton failure).
    pub steps_rejected: u64,
    /// Wall-clock time spent inside analyses, seconds.
    pub wall_seconds: f64,
}

impl SolverStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SolverStats) {
        self.symbolic_analyses += other.symbolic_analyses;
        self.factorizations += other.factorizations;
        self.solves += other.solves;
        self.newton_iterations += other.newton_iterations;
        self.steps_accepted += other.steps_accepted;
        self.steps_rejected += other.steps_rejected;
        self.wall_seconds += other.wall_seconds;
    }

    /// Renders the counters as a JSON object (for run manifests and
    /// `--json` experiment output).
    pub fn to_json(&self) -> rotsv_obs::Json {
        use rotsv_obs::Json;
        Json::Obj(vec![
            (
                "symbolic_analyses".into(),
                Json::Num(self.symbolic_analyses as f64),
            ),
            (
                "factorizations".into(),
                Json::Num(self.factorizations as f64),
            ),
            ("solves".into(), Json::Num(self.solves as f64)),
            (
                "newton_iterations".into(),
                Json::Num(self.newton_iterations as f64),
            ),
            (
                "steps_accepted".into(),
                Json::Num(self.steps_accepted as f64),
            ),
            (
                "steps_rejected".into(),
                Json::Num(self.steps_rejected as f64),
            ),
            ("wall_seconds".into(), Json::num_or_null(self.wall_seconds)),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "steps {}+{}r, newton {}, factor {} ({} analyses), solves {}, wall {:.3} s",
            self.steps_accepted,
            self.steps_rejected,
            self.newton_iterations,
            self.factorizations,
            self.symbolic_analyses,
            self.solves,
            self.wall_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(a: &SparseMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, b)| (ax - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn from_coords_dedups_and_accumulates() {
        let coords = [(0, 0), (1, 1), (0, 0), (0, 1)];
        let (mut m, slots) = SparseMatrix::from_coords(2, &coords);
        assert_eq!(m.nnz(), 3);
        assert_eq!(slots[0], slots[2]);
        m.add_slot(slots[0], 1.0);
        m.add_slot(slots[2], 2.0);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, -1.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
            ],
        );
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.mul_vec(&x), m.to_dense().mul_vec(&x));
    }

    #[test]
    fn lu_solves_mna_like_system() {
        // A voltage-divider MNA shape: conductances plus a vsource branch
        // (zero diagonal — exercises pivoting).
        let a = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 2e-3),
                (0, 1, -1e-3),
                (0, 2, 1.0),
                (1, 0, -1e-3),
                (1, 1, 2e-3),
                (2, 0, 1.0),
            ],
        );
        let mut lu = SparseLu::new(&a).unwrap();
        let b = [0.0, 0.0, 2.0];
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-12);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);

        // Refactor with changed conductances, same pattern.
        let a2 = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 3e-3),
                (0, 1, -2e-3),
                (0, 2, 1.0),
                (1, 0, -2e-3),
                (1, 1, 3e-3),
                (2, 0, 1.0),
            ],
        );
        assert!(!lu.refactor(&a2).unwrap());
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn refactor_falls_back_on_pivot_drift() {
        // First values make (0,0) the natural pivot; the second set zeroes
        // it, forcing the reused order to fail and re-analyze.
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let mut lu = SparseLu::new(&a).unwrap();
        let drifted =
            SparseMatrix::from_triplets(2, &[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
        let reanalyzed = lu.refactor(&drifted).unwrap();
        assert!(reanalyzed);
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!(residual_inf(&drifted, &x, &[1.0, 2.0]) < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a =
            SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        assert!(matches!(
            SparseLu::new(&a),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn fill_in_is_handled() {
        // Arrow matrix: dense last row/col creates fill during elimination.
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + i as f64));
            if i + 1 < n {
                t.push((i, n - 1, 1.0));
                t.push((n - 1, i, 1.0));
            }
        }
        let a = SparseMatrix::from_triplets(n, &t);
        let mut lu = SparseLu::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-12);
        assert!(lu.lu_nnz() >= a.nnz());
        // Refactor with perturbed values still solves tightly.
        let t2: Vec<(usize, usize, f64)> =
            t.iter().map(|&(i, j, v)| (i, j, v * 1.5 + 0.1)).collect();
        let a2 = SparseMatrix::from_triplets(n, &t2);
        lu.refactor(&a2).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut lu = SparseLu::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(SolveError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
        let b = SparseMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        assert!(matches!(
            lu.refactor(&b),
            Err(SolveError::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut s = SolverStats::default();
        s.merge(&SolverStats {
            factorizations: 2,
            newton_iterations: 5,
            wall_seconds: 0.5,
            ..SolverStats::default()
        });
        s.merge(&SolverStats {
            factorizations: 1,
            steps_rejected: 3,
            wall_seconds: 0.25,
            ..SolverStats::default()
        });
        assert_eq!(s.factorizations, 3);
        assert_eq!(s.newton_iterations, 5);
        assert_eq!(s.steps_rejected, 3);
        assert!((s.wall_seconds - 0.75).abs() < 1e-12);
    }
}
