//! Population statistics for Monte-Carlo analysis.
//!
//! The paper judges test robustness by how the Monte-Carlo *spreads* of the
//! fault-free and faulty ΔT populations relate: disjoint spreads mean the
//! fault is always detectable, overlapping spreads mean aliasing
//! (Figs. 7, 9 and 10). This module provides the summary and overlap
//! machinery used by those experiments.

use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains a non-finite value.
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot summarize an empty sample");
        assert!(
            data.iter().all(|v| v.is_finite()),
            "sample contains a non-finite value"
        );
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// The range `[min, max]` as an [`Interval`].
    pub fn interval(&self) -> Interval {
        Interval {
            lo: self.min,
            hi: self.max,
        }
    }

    /// Half-width of the spread, `(max − min) / 2`.
    pub fn half_spread(&self) -> f64 {
        (self.max - self.min) / 2.0
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} std={:.3e} range=[{:.6e}, {:.6e}]",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// A closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval; normalizes the endpoint order.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// Interval length, `hi − lo`.
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// Returns `true` if the interval has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0.0
    }

    /// Returns `true` if `x` lies within the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// The intersection with `other`, or `None` if disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

/// Fraction of the *union* of two sample ranges covered by their
/// intersection (0 = disjoint spreads, 1 = identical spreads).
///
/// This is the "spread overlap" metric plotted against M in Fig. 10 of the
/// paper: as more TSVs are tested in one oscillator, uncancelled process
/// variation widens both populations and their ranges start to overlap.
///
/// # Examples
///
/// ```
/// use rotsv_num::stats::range_overlap;
///
/// let fault_free = [0.0, 1.0, 2.0];
/// let faulty = [1.5, 2.5, 3.5];
/// let ov = range_overlap(&fault_free, &faulty);
/// assert!((ov - (2.0 - 1.5) / 3.5).abs() < 1e-12);
/// assert_eq!(range_overlap(&[0.0, 1.0], &[2.0, 3.0]), 0.0);
/// ```
///
/// # Panics
///
/// Panics if either sample is empty or non-finite.
pub fn range_overlap(a: &[f64], b: &[f64]) -> f64 {
    let sa = Summary::of(a).interval();
    let sb = Summary::of(b).interval();
    let inter = match sa.intersection(&sb) {
        Some(i) => i.len(),
        None => return 0.0,
    };
    let union = sa.len() + sb.len() - inter;
    if union <= 0.0 {
        // Both ranges degenerate to the same point.
        1.0
    } else {
        inter / union
    }
}

/// Fraction of points (from both samples pooled) that fall inside the
/// intersection of the two sample ranges.
///
/// Unlike [`range_overlap`] this weighs the *density* of the aliasing
/// region: a single outlier stretching a range contributes little.
///
/// # Panics
///
/// Panics if either sample is empty or non-finite.
pub fn point_overlap(a: &[f64], b: &[f64]) -> f64 {
    let sa = Summary::of(a).interval();
    let sb = Summary::of(b).interval();
    let Some(inter) = sa.intersection(&sb) else {
        return 0.0;
    };
    let in_a = a.iter().filter(|&&x| inter.contains(x)).count();
    let in_b = b.iter().filter(|&&x| inter.contains(x)).count();
    (in_a + in_b) as f64 / (a.len() + b.len()) as f64
}

/// Linearly interpolated percentile of a sample (`p` in `[0, 100]`).
///
/// # Panics
///
/// Panics if `data` is empty, contains non-finite values, or `p` is outside
/// `[0, 100]`.
///
/// # Examples
///
/// ```
/// use rotsv_num::stats::percentile;
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&data, 0.0), 1.0);
/// assert_eq!(percentile(&data, 100.0), 4.0);
/// assert_eq!(percentile(&data, 50.0), 2.5);
/// ```
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "cannot take percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    assert!(
        data.iter().all(|v| v.is_finite()),
        "sample contains a non-finite value"
    );
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-bin histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    outliers: usize,
}

impl Histogram {
    /// Builds a histogram of `data` with `bins` equal-width bins on
    /// `[lo, hi]`. Values outside the range are counted as outliers.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(data: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        let mut counts = vec![0usize; bins];
        let mut outliers = 0usize;
        let width = (hi - lo) / bins as f64;
        for &x in data {
            if x < lo || x > hi || !x.is_finite() {
                outliers += 1;
            } else {
                let idx = (((x - lo) / width) as usize).min(bins - 1);
                counts[idx] += 1;
            }
        }
        Self {
            lo,
            hi,
            counts,
            outliers,
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of values outside `[lo, hi]`.
    pub fn outliers(&self) -> usize {
        self.outliers
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-15);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-15);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.half_spread(), 1.5);
    }

    #[test]
    fn summary_single_sample_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn interval_intersection_cases() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        let c = Interval::new(5.0, 6.0);
        assert_eq!(a.intersection(&b), Some(Interval { lo: 1.0, hi: 2.0 }));
        assert_eq!(a.intersection(&c), None);
        // Touching intervals intersect in a point.
        let d = Interval::new(2.0, 4.0);
        assert_eq!(a.intersection(&d), Some(Interval { lo: 2.0, hi: 2.0 }));
    }

    #[test]
    fn interval_normalizes_order() {
        let i = Interval::new(3.0, 1.0);
        assert_eq!(i.lo, 1.0);
        assert_eq!(i.hi, 3.0);
    }

    #[test]
    fn overlap_of_identical_ranges_is_one() {
        let a = [1.0, 2.0, 3.0];
        assert!((range_overlap(&a, &a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn overlap_of_disjoint_ranges_is_zero() {
        assert_eq!(range_overlap(&[0.0, 1.0], &[5.0, 9.0]), 0.0);
        assert_eq!(point_overlap(&[0.0, 1.0], &[5.0, 9.0]), 0.0);
    }

    #[test]
    fn overlap_of_degenerate_identical_points_is_one() {
        assert_eq!(range_overlap(&[2.0], &[2.0]), 1.0);
    }

    #[test]
    fn point_overlap_counts_density() {
        // Intersection is [2, 3]; a has 2 of 4 points inside, b has 2 of 4.
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [2.0, 2.5, 3.0, 5.0];
        let ov = point_overlap(&a, &b);
        assert!((ov - 5.0 / 8.0).abs() < 1e-12, "got {ov}");
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let data = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 50.0), 3.0);
        assert_eq!(percentile(&data, 100.0), 5.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let h = Histogram::new(&[0.1, 0.9, 1.5, 2.5, -1.0, 10.0], 0.0, 3.0, 3);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.outliers(), 2);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn histogram_upper_edge_lands_in_last_bin() {
        let h = Histogram::new(&[3.0], 0.0, 3.0, 3);
        assert_eq!(h.counts(), &[0, 0, 1]);
        assert_eq!(h.outliers(), 0);
    }
}
