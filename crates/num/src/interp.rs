//! Linear interpolation over sampled data.
//!
//! Waveform post-processing (threshold-crossing times, delay extraction)
//! interpolates between transient time points; oscillation periods are then
//! accurate to far better than the integration step.

/// Linearly interpolates `y(x)` on the sorted grid `xs` with values `ys`.
///
/// Outside the grid the boundary value is returned (constant
/// extrapolation), matching how measurement logic holds the last sample.
///
/// # Panics
///
/// Panics if the slices are empty, have different lengths, or `xs` is not
/// strictly increasing.
///
/// # Examples
///
/// ```
/// use rotsv_num::interp::lerp_at;
///
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 10.0, 0.0];
/// assert_eq!(lerp_at(&xs, &ys, 0.5), 5.0);
/// assert_eq!(lerp_at(&xs, &ys, -1.0), 0.0); // clamped
/// assert_eq!(lerp_at(&xs, &ys, 3.0), 0.0); // clamped
/// ```
pub fn lerp_at(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert!(!xs.is_empty(), "empty grid");
    assert_eq!(xs.len(), ys.len(), "grid/value length mismatch");
    debug_assert!(
        xs.windows(2).all(|w| w[0] < w[1]),
        "grid must be strictly increasing"
    );
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Binary search for the bracketing segment.
    let idx = match xs.binary_search_by(|v| v.partial_cmp(&x).expect("finite grid")) {
        Ok(i) => return ys[i],
        Err(i) => i,
    };
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    let t = (x - x0) / (x1 - x0);
    y0 + t * (y1 - y0)
}

/// Solves `y(x) = target` by inverse interpolation on one segment.
///
/// Given segment endpoints `(x0, y0)` and `(x1, y1)` with `target` between
/// `y0` and `y1`, returns the crossing abscissa.
///
/// # Panics
///
/// Panics if `y0 == y1` (no unique crossing).
pub fn crossing_on_segment(x0: f64, y0: f64, x1: f64, y1: f64, target: f64) -> f64 {
    assert!(y0 != y1, "segment is flat, crossing undefined");
    let t = (target - y0) / (y1 - y0);
    x0 + t * (x1 - x0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_grid_points_are_returned() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [3.0, 4.0, 5.0];
        for i in 0..3 {
            assert_eq!(lerp_at(&xs, &ys, xs[i]), ys[i]);
        }
    }

    #[test]
    fn interpolates_mid_segment() {
        let xs = [0.0, 2.0];
        let ys = [0.0, 1.0];
        assert!((lerp_at(&xs, &ys, 0.5) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn single_point_grid_is_constant() {
        assert_eq!(lerp_at(&[1.0], &[9.0], 0.0), 9.0);
        assert_eq!(lerp_at(&[1.0], &[9.0], 5.0), 9.0);
    }

    #[test]
    fn crossing_recovers_threshold_time() {
        // y goes 0 -> 1 over x 10 -> 12; y = 0.5 at x = 11.
        assert!((crossing_on_segment(10.0, 0.0, 12.0, 1.0, 0.5) - 11.0).abs() < 1e-15);
        // Falling edge.
        assert!((crossing_on_segment(0.0, 1.0, 1.0, 0.0, 0.25) - 0.75).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "flat")]
    fn flat_segment_panics() {
        let _ = crossing_on_segment(0.0, 1.0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = lerp_at(&[0.0, 1.0], &[0.0], 0.5);
    }
}
