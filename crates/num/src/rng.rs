//! Seeded random sampling for Monte-Carlo process variation.
//!
//! All Monte-Carlo experiments in the workspace must be reproducible, so
//! every sampler is constructed from an explicit `u64` seed. The uniform
//! source is a self-contained xoshiro256++ generator (seeded through
//! SplitMix64), which keeps the workspace free of external dependencies —
//! this build environment has no access to crates.io. Gaussian deviates
//! are generated with the Marsaglia polar method on top of it.

/// The xoshiro256++ uniform generator.
///
/// Public only through [`GaussianRng`]; kept as a separate type so the
/// state-transition logic is testable on its own.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full 256-bit state with SplitMix64,
    /// the expansion recommended by the xoshiro authors.
    fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform deviate in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seeded generator of standard-normal and uniform deviates.
///
/// # Examples
///
/// ```
/// use rotsv_num::rng::GaussianRng;
///
/// let mut rng = GaussianRng::seed_from(42);
/// let x = rng.standard_normal();
/// let mut rng2 = GaussianRng::seed_from(42);
/// assert_eq!(x, rng2.standard_normal(), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct GaussianRng {
    rng: Xoshiro256pp,
    /// Second deviate of a Marsaglia pair, saved for the next call.
    spare: Option<f64>,
}

impl GaussianRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::seed_from(seed),
            spare: None,
        }
    }

    /// Next deviate from the standard normal distribution N(0, 1).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Marsaglia polar method.
        loop {
            let u: f64 = 2.0 * self.rng.next_f64() - 1.0;
            let v: f64 = 2.0 * self.rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Next deviate from N(`mean`, `sigma`²).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        mean + sigma * self.standard_normal()
    }

    /// Uniform deviate in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must be non-empty");
        // `next_f64()` is < 1, but rounding in `(hi - lo) * f` can still
        // land exactly on `hi - lo`; clamp so the interval stays half-open.
        let x = lo + (hi - lo) * self.rng.next_f64();
        if x >= hi {
            hi.next_down()
        } else {
            x
        }
    }

    /// Derives an independent child generator; used to give each
    /// Monte-Carlo sample its own stream so samples can run in parallel
    /// while staying reproducible.
    pub fn fork(&mut self, stream: u64) -> GaussianRng {
        // Mix the stream index into a fresh seed drawn from this generator.
        let base: u64 = self.rng.next_u64();
        GaussianRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn same_seed_reproduces_stream() {
        let mut a = GaussianRng::seed_from(7);
        let mut b = GaussianRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianRng::seed_from(1);
        let mut b = GaussianRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.standard_normal() == b.standard_normal())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = GaussianRng::seed_from(1234);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.standard_normal()).collect();
        let s = Summary::of(&xs);
        assert!(s.mean.abs() < 0.03, "mean {}", s.mean);
        assert!((s.std_dev - 1.0).abs() < 0.03, "std {}", s.std_dev);
    }

    #[test]
    fn three_sigma_coverage_close_to_theory() {
        let mut rng = GaussianRng::seed_from(99);
        let n = 50_000;
        let inside = (0..n)
            .filter(|_| rng.standard_normal().abs() <= 3.0)
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.9973).abs() < 0.002, "3-sigma coverage {frac}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = GaussianRng::seed_from(5);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.normal(10.0, 0.01)).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 10.0).abs() < 0.001);
        assert!((s.std_dev - 0.01).abs() < 0.001);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = GaussianRng::seed_from(5);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn uniform_fills_the_range() {
        let mut rng = GaussianRng::seed_from(17);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 0.5).abs() < 0.02, "mean {}", s.mean);
        assert!(s.min < 0.01 && s.max > 0.99, "range [{}, {}]", s.min, s.max);
    }

    #[test]
    fn uniform_upper_bound_is_exclusive_even_under_rounding() {
        // With a range this narrow, f close to 1 rounds (hi - lo) * f up
        // to exactly hi - lo, so without the clamp the result equals hi.
        let lo = 1.0;
        let hi = 1.0 + f64::EPSILON;
        let mut rng = GaussianRng::seed_from(3);
        for _ in 0..4096 {
            let x = rng.uniform(lo, hi);
            assert!(x >= lo && x < hi, "x = {x:e} not in [{lo:e}, {hi:e})");
        }
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let mut parent1 = GaussianRng::seed_from(11);
        let mut parent2 = GaussianRng::seed_from(11);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.standard_normal(), c2.standard_normal());
        let mut c3 = parent1.fork(1);
        // Streams from different indices should not be identical.
        let matches = (0..32)
            .filter(|_| c1.standard_normal() == c3.standard_normal())
            .count();
        assert!(matches < 4);
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn negative_sigma_panics() {
        let mut rng = GaussianRng::seed_from(0);
        let _ = rng.normal(0.0, -1.0);
    }
}
