//! Seeded random sampling for Monte-Carlo process variation.
//!
//! All Monte-Carlo experiments in the workspace must be reproducible, so
//! every sampler is constructed from an explicit `u64` seed. Gaussian
//! deviates are generated with the Marsaglia polar method on top of the
//! `rand` uniform source.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of standard-normal and uniform deviates.
///
/// # Examples
///
/// ```
/// use rotsv_num::rng::GaussianRng;
///
/// let mut rng = GaussianRng::seed_from(42);
/// let x = rng.standard_normal();
/// let mut rng2 = GaussianRng::seed_from(42);
/// assert_eq!(x, rng2.standard_normal(), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct GaussianRng {
    rng: StdRng,
    /// Second deviate of a Marsaglia pair, saved for the next call.
    spare: Option<f64>,
}

impl GaussianRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Next deviate from the standard normal distribution N(0, 1).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Marsaglia polar method.
        loop {
            let u: f64 = self.rng.gen_range(-1.0..1.0);
            let v: f64 = self.rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Next deviate from N(`mean`, `sigma`²).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        mean + sigma * self.standard_normal()
    }

    /// Uniform deviate in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must be non-empty");
        self.rng.gen_range(lo..hi)
    }

    /// Derives an independent child generator; used to give each
    /// Monte-Carlo sample its own stream so samples can run in parallel
    /// while staying reproducible.
    pub fn fork(&mut self, stream: u64) -> GaussianRng {
        // Mix the stream index into a fresh seed drawn from this generator.
        let base: u64 = self.rng.gen();
        GaussianRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn same_seed_reproduces_stream() {
        let mut a = GaussianRng::seed_from(7);
        let mut b = GaussianRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianRng::seed_from(1);
        let mut b = GaussianRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.standard_normal() == b.standard_normal())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = GaussianRng::seed_from(1234);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.standard_normal()).collect();
        let s = Summary::of(&xs);
        assert!(s.mean.abs() < 0.03, "mean {}", s.mean);
        assert!((s.std_dev - 1.0).abs() < 0.03, "std {}", s.std_dev);
    }

    #[test]
    fn three_sigma_coverage_close_to_theory() {
        let mut rng = GaussianRng::seed_from(99);
        let n = 50_000;
        let inside = (0..n)
            .filter(|_| rng.standard_normal().abs() <= 3.0)
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.9973).abs() < 0.002, "3-sigma coverage {frac}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = GaussianRng::seed_from(5);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.normal(10.0, 0.01)).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 10.0).abs() < 0.001);
        assert!((s.std_dev - 0.01).abs() < 0.001);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = GaussianRng::seed_from(5);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let mut parent1 = GaussianRng::seed_from(11);
        let mut parent2 = GaussianRng::seed_from(11);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.standard_normal(), c2.standard_normal());
        let mut c3 = parent1.fork(1);
        // Streams from different indices should not be identical.
        let matches = (0..32)
            .filter(|_| c1.standard_normal() == c3.standard_normal())
            .count();
        assert!(matches < 4);
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn negative_sigma_panics() {
        let mut rng = GaussianRng::seed_from(0);
        let _ = rng.normal(0.0, -1.0);
    }
}
