//! Runtime-dispatched `f64` lane vectors for the batched hot kernels.
//!
//! The batched Monte-Carlo engine's inner loops (MOSFET model
//! evaluation, matrix assembly, the `BatchedLu` numeric sweep) iterate
//! over `K` interleaved lanes. The tree used to pin
//! `-C target-cpu=native` so those loops autovectorized, at the cost of
//! non-portable binaries; a portable build compiled them to baseline
//! SSE2 and lost 2–3× of throughput. This module replaces the pin with
//! explicit wide code paths: an ISA is detected **once** per process via
//! [`std::arch::is_x86_feature_detected!`], cached in an atomic, and
//! every kernel dispatches to a monomorphic arm compiled for that ISA.
//!
//! # Architecture
//!
//! [`Simd`] is a token trait: each implementor ([`Avx512Lanes`],
//! [`Avx2Lanes`], [`ScalarLanes`]) names a register type `V` holding
//! [`Simd::W`] lanes of `f64` and provides the primitive operations the
//! kernels need. Kernels are written once, generic over `S: Simd`, with
//! `#[inline(always)]`; each call site instantiates them inside small
//! `#[target_feature(enable = ...)]` wrapper functions so the whole
//! kernel body — trait ops and any remaining scalar glue — is compiled
//! with the wide ISA enabled and fully inlined. Dispatch cost is one
//! relaxed atomic load per kernel call.
//!
//! # Bit-identity contract
//!
//! Every operation exposed here is **IEEE-754 exact** — add, sub, mul,
//! div, sqrt, sign manipulation, compare and blend all round identically
//! in every ISA — so a kernel instantiated at `Avx512Lanes`,
//! `Avx2Lanes` and `ScalarLanes` produces bit-identical results as long
//! as it performs the same operations in the same association order.
//! Two deliberate consequences:
//!
//! * **No FMA.** A fused multiply-add rounds once where `mul` + `add`
//!   round twice, so using it in any arm would break identity with the
//!   scalar fallback (and a software-emulated `fma` on machines without
//!   the instruction is catastrophically slow). The [`Avx2Lanes`] level
//!   *detects* FMA (every AVX2+FMA part has it, and the check keeps the
//!   level meaningful on exotic cores) but no kernel emits it; rustc
//!   never contracts `a * b + c` on its own.
//! * **Select-form min/max.** `max` is `gt` + [`Simd::sel`] — the
//!   compare-and-blend idiom — rather than the `maxpd` instruction,
//!   whose NaN and `±0` semantics differ from `f64::max`. The scalar
//!   kernels in [`crate::lanes`] use the same select form, so all arms
//!   agree even on non-finite inputs.
//!
//! The exponent-assembly helper [`Simd::exp2_from_shifted`] is the one
//! non-obvious op: see its docs for why it is exact and why it avoids
//! the AVX-512DQ-only `f64 → i64` conversion.
//!
//! # Level selection
//!
//! [`level`] detects the best ISA on first use. The `ROTSV_SIMD`
//! environment variable (`scalar` | `avx2` | `avx512`) caps the level
//! for A/B measurements and for CI's portable job; [`set_level`] does
//! the same programmatically for tests. Both are clamped to what the
//! CPU actually supports — forcing `avx512` on a machine without it
//! silently degrades to the best available level, never to undefined
//! behavior.

use std::sync::atomic::{AtomicU8, Ordering};

/// SIMD capability tier, ordered from narrowest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// One lane per "vector": portable fallback, no ISA assumptions.
    Scalar = 0,
    /// 4 × f64 in `__m256d` (requires AVX2 and FMA; FMA is detected but
    /// never emitted — see the module docs).
    Avx2 = 1,
    /// 8 × f64 in `__m512d` (requires AVX-512F only).
    Avx512 = 2,
}

impl Level {
    /// Lanes per vector register at this level.
    pub fn width(self) -> usize {
        match self {
            Level::Scalar => 1,
            Level::Avx2 => 4,
            Level::Avx512 => 8,
        }
    }

    /// Stable lowercase name (`scalar` / `avx2` / `avx512`), matching
    /// the `ROTSV_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
            Level::Avx512 => "avx512",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            2 => Level::Avx512,
            1 => Level::Avx2,
            _ => Level::Scalar,
        }
    }
}

/// Sentinel for "not yet detected".
const UNSET: u8 = u8::MAX;

/// Cached dispatch level; written once by [`init_level`] (or by
/// [`set_level`]) and read with a relaxed load per kernel call.
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// What the hardware supports, independent of any override.
pub fn detected() -> Level {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Level::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Level::Avx2;
        }
    }
    Level::Scalar
}

/// Cold path of [`level`]: detect, apply the `ROTSV_SIMD` cap, publish.
#[cold]
fn init_level() -> Level {
    let det = detected();
    let lvl = match std::env::var("ROTSV_SIMD") {
        Ok(s) => match s.as_str() {
            "scalar" => Level::Scalar,
            "avx2" => Level::Avx2.min(det),
            "avx512" => Level::Avx512.min(det),
            other => {
                eprintln!(
                    "ROTSV_SIMD={other:?} not recognized (scalar|avx2|avx512); using {}",
                    det.name()
                );
                det
            }
        },
        Err(_) => det,
    };
    // A racing first call stores the same value: detection is
    // deterministic and the env var is read identically.
    LEVEL.store(lvl as u8, Ordering::Relaxed);
    lvl
}

/// The active dispatch level (detected once, then cached).
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        UNSET => init_level(),
        v => Level::from_u8(v),
    }
}

/// Forces the dispatch level, clamped to what the CPU supports, and
/// returns the level actually installed. Intended for tests and
/// benchmarks that compare arms; production code should rely on
/// detection (or `ROTSV_SIMD`).
pub fn set_level(want: Level) -> Level {
    let got = want.min(detected());
    LEVEL.store(got as u8, Ordering::Relaxed);
    got
}

/// An ISA token: `W` lanes of `f64` in one register `V`, with the exact
/// (correctly-rounded, reassociation-free) primitive set the batched
/// kernels are built from.
///
/// # Safety
///
/// Every method is `unsafe` because the wide implementations execute
/// ISA-specific instructions: callers must guarantee the corresponding
/// CPU features are present (dispatch via [`level`] after [`detected`]
/// establishes this), and should call them from inside a matching
/// `#[target_feature]` region so the `#[inline(always)]` bodies
/// actually inline.
pub unsafe trait Simd: Copy {
    /// Lanes per register.
    const W: usize;
    /// The register type (`f64`, `__m256d` or `__m512d`).
    type V: Copy;
    /// The compare-result type consumed by [`Simd::sel`].
    type M: Copy;

    /// Broadcasts `x` into all lanes.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn splat(x: f64) -> Self::V;
    /// Loads `W` consecutive lanes from `p` (unaligned).
    ///
    /// # Safety
    ///
    /// `p` must be valid for reading `W` `f64`s; trait-level contract.
    unsafe fn ld(p: *const f64) -> Self::V;
    /// Stores `W` consecutive lanes to `p` (unaligned).
    ///
    /// # Safety
    ///
    /// `p` must be valid for writing `W` `f64`s; trait-level contract.
    unsafe fn st(p: *mut f64, v: Self::V);
    /// Lane-wise `a + b` (exact IEEE rounding).
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a - b`.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn sub(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a * b`.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a / b`.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn div(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise square root (correctly rounded, like `f64::sqrt`).
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn sqrt(a: Self::V) -> Self::V;
    /// Clears the sign bit (bit-identical to `f64::abs`).
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn abs(a: Self::V) -> Self::V;
    /// Flips the sign bit (bit-identical to unary `-`).
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn neg(a: Self::V) -> Self::V;
    /// Lane-wise ordered `a > b` (false on NaN, like the scalar `>`).
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn gt(a: Self::V, b: Self::V) -> Self::M;
    /// Lane-wise ordered `a >= b` (false on NaN).
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn ge(a: Self::V, b: Self::V) -> Self::M;
    /// Lane-wise select `if m { a } else { b }`.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn sel(m: Self::M, a: Self::V, b: Self::V) -> Self::V;

    /// Select-form maximum `if a > b { a } else { b }` — matches the
    /// scalar kernels' idiom, *not* `maxpd` (whose NaN/±0 semantics
    /// differ).
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    #[inline(always)]
    unsafe fn max_sel(a: Self::V, b: Self::V) -> Self::V {
        // SAFETY: forwarded; same contract as the caller's.
        unsafe { Self::sel(Self::gt(a, b), a, b) }
    }

    /// `2ⁿ` assembled from the shift-trick rounding register.
    ///
    /// `t = x·log2e + SHIFT` (with `SHIFT = 1.5·2⁵²`) holds the
    /// round-to-nearest integer `n = round(x·log2e)` in its low mantissa
    /// bits, two's-complement wrapped. For the `exp` kernel's range
    /// (`|n| ≤ 87`), `((t.to_bits() + 1023) << 52)` therefore equals
    /// `((n + 1023) << 52)` — the scalar kernel's exponent-field
    /// construction — exactly: the mantissa of `t` is `2⁵¹ + n`, adding
    /// 1023 cannot carry past bit 51, and the shift discards everything
    /// above bit 11. This needs only integer add + shift (AVX2 /
    /// AVX-512F), avoiding the `f64 → i64` conversion that AVX-512
    /// reserves for the DQ extension.
    ///
    /// # Safety
    ///
    /// See the trait-level contract.
    unsafe fn exp2_from_shifted(t: Self::V) -> Self::V;
}

/// One lane per register: the portable arm, defined on every
/// architecture. All ops are plain scalar arithmetic, so a kernel
/// instantiated here compiles to exactly the code the pre-dispatch
/// engine ran.
#[derive(Debug, Clone, Copy)]
pub struct ScalarLanes;

// SAFETY: every op is plain safe scalar arithmetic; the unsafe markers
// exist only for signature uniformity with the wide arms.
unsafe impl Simd for ScalarLanes {
    const W: usize = 1;
    type V = f64;
    type M = bool;

    #[inline(always)]
    unsafe fn splat(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    unsafe fn ld(p: *const f64) -> f64 {
        // SAFETY: caller guarantees `p` is readable.
        unsafe { *p }
    }
    #[inline(always)]
    unsafe fn st(p: *mut f64, v: f64) {
        // SAFETY: caller guarantees `p` is writable.
        unsafe { *p = v }
    }
    #[inline(always)]
    unsafe fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    unsafe fn sub(a: f64, b: f64) -> f64 {
        a - b
    }
    #[inline(always)]
    unsafe fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    unsafe fn div(a: f64, b: f64) -> f64 {
        a / b
    }
    #[inline(always)]
    unsafe fn sqrt(a: f64) -> f64 {
        a.sqrt()
    }
    #[inline(always)]
    unsafe fn abs(a: f64) -> f64 {
        a.abs()
    }
    #[inline(always)]
    unsafe fn neg(a: f64) -> f64 {
        -a
    }
    #[inline(always)]
    unsafe fn gt(a: f64, b: f64) -> bool {
        a > b
    }
    #[inline(always)]
    unsafe fn ge(a: f64, b: f64) -> bool {
        a >= b
    }
    #[inline(always)]
    unsafe fn sel(m: bool, a: f64, b: f64) -> f64 {
        if m {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    unsafe fn exp2_from_shifted(t: f64) -> f64 {
        // Equivalent to the scalar kernel's `((n as i64 + 1023) << 52)`
        // for the reduced range — see the trait method's docs.
        f64::from_bits(((t.to_bits() as i64).wrapping_add(1023) << 52) as u64)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Simd;
    use std::arch::x86_64::*;

    /// 4 × f64 in `__m256d`. Requires AVX2 (+ FMA detected, never
    /// emitted — see the module docs).
    #[derive(Debug, Clone, Copy)]
    pub struct Avx2Lanes;

    // SAFETY: ops are AVX/AVX2 instructions with exact IEEE semantics;
    // callers uphold the feature-availability contract.
    unsafe impl Simd for Avx2Lanes {
        const W: usize = 4;
        type V = __m256d;
        type M = __m256d;

        #[inline(always)]
        unsafe fn splat(x: f64) -> __m256d {
            unsafe { _mm256_set1_pd(x) }
        }
        #[inline(always)]
        unsafe fn ld(p: *const f64) -> __m256d {
            unsafe { _mm256_loadu_pd(p) }
        }
        #[inline(always)]
        unsafe fn st(p: *mut f64, v: __m256d) {
            unsafe { _mm256_storeu_pd(p, v) }
        }
        #[inline(always)]
        unsafe fn add(a: __m256d, b: __m256d) -> __m256d {
            unsafe { _mm256_add_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn sub(a: __m256d, b: __m256d) -> __m256d {
            unsafe { _mm256_sub_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn mul(a: __m256d, b: __m256d) -> __m256d {
            unsafe { _mm256_mul_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn div(a: __m256d, b: __m256d) -> __m256d {
            unsafe { _mm256_div_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn sqrt(a: __m256d) -> __m256d {
            unsafe { _mm256_sqrt_pd(a) }
        }
        #[inline(always)]
        unsafe fn abs(a: __m256d) -> __m256d {
            unsafe { _mm256_andnot_pd(_mm256_set1_pd(-0.0), a) }
        }
        #[inline(always)]
        unsafe fn neg(a: __m256d) -> __m256d {
            unsafe { _mm256_xor_pd(a, _mm256_set1_pd(-0.0)) }
        }
        #[inline(always)]
        unsafe fn gt(a: __m256d, b: __m256d) -> __m256d {
            unsafe { _mm256_cmp_pd::<_CMP_GT_OQ>(a, b) }
        }
        #[inline(always)]
        unsafe fn ge(a: __m256d, b: __m256d) -> __m256d {
            unsafe { _mm256_cmp_pd::<_CMP_GE_OQ>(a, b) }
        }
        #[inline(always)]
        unsafe fn sel(m: __m256d, a: __m256d, b: __m256d) -> __m256d {
            // blendv picks the second operand where the mask sign bit is
            // set: `m ? a : b`.
            unsafe { _mm256_blendv_pd(b, a, m) }
        }
        #[inline(always)]
        unsafe fn exp2_from_shifted(t: __m256d) -> __m256d {
            unsafe {
                let bits = _mm256_castpd_si256(t);
                let bits = _mm256_add_epi64(bits, _mm256_set1_epi64x(1023));
                _mm256_castsi256_pd(_mm256_slli_epi64::<52>(bits))
            }
        }
    }

    /// 8 × f64 in `__m512d`. Requires AVX-512F only: compares use mask
    /// registers, sign manipulation goes through the integer domain
    /// (`xor_pd` would need DQ), and the `exp` exponent assembly avoids
    /// DQ's `f64 → i64` conversion by construction.
    #[derive(Debug, Clone, Copy)]
    pub struct Avx512Lanes;

    // SAFETY: ops are AVX-512F instructions with exact IEEE semantics;
    // callers uphold the feature-availability contract.
    unsafe impl Simd for Avx512Lanes {
        const W: usize = 8;
        type V = __m512d;
        type M = __mmask8;

        #[inline(always)]
        unsafe fn splat(x: f64) -> __m512d {
            unsafe { _mm512_set1_pd(x) }
        }
        #[inline(always)]
        unsafe fn ld(p: *const f64) -> __m512d {
            unsafe { _mm512_loadu_pd(p) }
        }
        #[inline(always)]
        unsafe fn st(p: *mut f64, v: __m512d) {
            unsafe { _mm512_storeu_pd(p, v) }
        }
        #[inline(always)]
        unsafe fn add(a: __m512d, b: __m512d) -> __m512d {
            unsafe { _mm512_add_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn sub(a: __m512d, b: __m512d) -> __m512d {
            unsafe { _mm512_sub_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn mul(a: __m512d, b: __m512d) -> __m512d {
            unsafe { _mm512_mul_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn div(a: __m512d, b: __m512d) -> __m512d {
            unsafe { _mm512_div_pd(a, b) }
        }
        #[inline(always)]
        unsafe fn sqrt(a: __m512d) -> __m512d {
            unsafe { _mm512_sqrt_pd(a) }
        }
        #[inline(always)]
        unsafe fn abs(a: __m512d) -> __m512d {
            unsafe { _mm512_abs_pd(a) }
        }
        #[inline(always)]
        unsafe fn neg(a: __m512d) -> __m512d {
            unsafe {
                _mm512_castsi512_pd(_mm512_xor_epi64(
                    _mm512_castpd_si512(a),
                    _mm512_set1_epi64(i64::MIN),
                ))
            }
        }
        #[inline(always)]
        unsafe fn gt(a: __m512d, b: __m512d) -> __mmask8 {
            unsafe { _mm512_cmp_pd_mask::<_CMP_GT_OQ>(a, b) }
        }
        #[inline(always)]
        unsafe fn ge(a: __m512d, b: __m512d) -> __mmask8 {
            unsafe { _mm512_cmp_pd_mask::<_CMP_GE_OQ>(a, b) }
        }
        #[inline(always)]
        unsafe fn sel(m: __mmask8, a: __m512d, b: __m512d) -> __m512d {
            // blend picks the second operand where the mask bit is set:
            // `m ? a : b`.
            unsafe { _mm512_mask_blend_pd(m, b, a) }
        }
        #[inline(always)]
        unsafe fn exp2_from_shifted(t: __m512d) -> __m512d {
            unsafe {
                let bits = _mm512_castpd_si512(t);
                let bits = _mm512_add_epi64(bits, _mm512_set1_epi64(1023));
                _mm512_castsi512_pd(_mm512_slli_epi64::<52>(bits))
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::{Avx2Lanes, Avx512Lanes};

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that mutate the process-global level.
    static LEVEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn set_level_clamps_to_detected_hardware() {
        let _guard = LEVEL_LOCK.lock().unwrap();
        let prior = level();
        let det = detected();
        assert_eq!(set_level(Level::Avx512), Level::Avx512.min(det));
        assert_eq!(set_level(Level::Avx2), Level::Avx2.min(det));
        assert_eq!(set_level(Level::Scalar), Level::Scalar);
        assert_eq!(level(), Level::Scalar);
        set_level(prior);
    }

    #[test]
    fn width_matches_tokens() {
        assert_eq!(Level::Scalar.width(), ScalarLanes::W);
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(Level::Avx2.width(), Avx2Lanes::W);
            assert_eq!(Level::Avx512.width(), Avx512Lanes::W);
        }
    }

    /// The scalar token's exponent assembly must agree bit for bit with
    /// the direct `(n + 1023) << 52` construction used by
    /// `lanes::exp` for every exponent the kernel can produce.
    #[test]
    fn exp2_from_shifted_matches_direct_construction() {
        const SHIFT: f64 = 6_755_399_441_055_744.0;
        for n in -90i64..=90 {
            let t = n as f64 + SHIFT;
            // SAFETY: scalar arm, no ISA requirements.
            let got = unsafe { ScalarLanes::exp2_from_shifted(t) };
            let want = f64::from_bits(((n + 1023) << 52) as u64);
            assert_eq!(got.to_bits(), want.to_bits(), "n = {n}");
        }
    }

    /// Every arm the hardware supports computes the same ops bit for
    /// bit on a mixed bag of values (including negatives, zeros and a
    /// huge magnitude).
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn wide_arms_are_bit_identical_to_scalar_ops() {
        #[derive(Clone, Copy)]
        struct Case {
            a: f64,
            b: f64,
        }
        let cases: Vec<Case> = (0..64)
            .map(|i| Case {
                a: (i as f64 - 31.5) * 0.817 + if i % 7 == 0 { -0.0 } else { 0.013 },
                b: (i as f64 - 12.0) * 1.33e3 + 0.25,
            })
            .collect();

        fn scalar_ref(c: Case) -> [f64; 8] {
            // SAFETY: scalar arm.
            unsafe {
                [
                    ScalarLanes::add(c.a, c.b),
                    ScalarLanes::sub(c.a, c.b),
                    ScalarLanes::mul(c.a, c.b),
                    ScalarLanes::div(c.a, c.b),
                    ScalarLanes::sqrt(ScalarLanes::abs(c.a)),
                    ScalarLanes::neg(c.a),
                    ScalarLanes::max_sel(c.a, c.b),
                    ScalarLanes::sel(ScalarLanes::ge(c.a, c.b), c.a, c.b),
                ]
            }
        }

        #[target_feature(enable = "avx2")]
        fn run_avx2(cases: &[Case], out: &mut Vec<[f64; 8]>) {
            for chunk in cases.chunks_exact(Avx2Lanes::W) {
                let a_arr: Vec<f64> = chunk.iter().map(|c| c.a).collect();
                let b_arr: Vec<f64> = chunk.iter().map(|c| c.b).collect();
                // SAFETY: inside an avx2 region; pointers cover W lanes.
                unsafe {
                    let a = Avx2Lanes::ld(a_arr.as_ptr());
                    let b = Avx2Lanes::ld(b_arr.as_ptr());
                    let res = [
                        Avx2Lanes::add(a, b),
                        Avx2Lanes::sub(a, b),
                        Avx2Lanes::mul(a, b),
                        Avx2Lanes::div(a, b),
                        Avx2Lanes::sqrt(Avx2Lanes::abs(a)),
                        Avx2Lanes::neg(a),
                        Avx2Lanes::max_sel(a, b),
                        Avx2Lanes::sel(Avx2Lanes::ge(a, b), a, b),
                    ];
                    for lane in 0..Avx2Lanes::W {
                        let mut row = [0.0; 8];
                        for (o, r) in row.iter_mut().zip(res.iter()) {
                            let mut buf = [0.0; 4];
                            Avx2Lanes::st(buf.as_mut_ptr(), *r);
                            *o = buf[lane];
                        }
                        out.push(row);
                    }
                }
            }
        }

        #[target_feature(enable = "avx512f")]
        fn run_avx512(cases: &[Case], out: &mut Vec<[f64; 8]>) {
            for chunk in cases.chunks_exact(Avx512Lanes::W) {
                let a_arr: Vec<f64> = chunk.iter().map(|c| c.a).collect();
                let b_arr: Vec<f64> = chunk.iter().map(|c| c.b).collect();
                // SAFETY: inside an avx512f region; pointers cover W lanes.
                unsafe {
                    let a = Avx512Lanes::ld(a_arr.as_ptr());
                    let b = Avx512Lanes::ld(b_arr.as_ptr());
                    let res = [
                        Avx512Lanes::add(a, b),
                        Avx512Lanes::sub(a, b),
                        Avx512Lanes::mul(a, b),
                        Avx512Lanes::div(a, b),
                        Avx512Lanes::sqrt(Avx512Lanes::abs(a)),
                        Avx512Lanes::neg(a),
                        Avx512Lanes::max_sel(a, b),
                        Avx512Lanes::sel(Avx512Lanes::ge(a, b), a, b),
                    ];
                    for lane in 0..Avx512Lanes::W {
                        let mut row = [0.0; 8];
                        for (o, r) in row.iter_mut().zip(res.iter()) {
                            let mut buf = [0.0; 8];
                            Avx512Lanes::st(buf.as_mut_ptr(), *r);
                            *o = buf[lane];
                        }
                        out.push(row);
                    }
                }
            }
        }

        let want: Vec<[f64; 8]> = cases.iter().map(|&c| scalar_ref(c)).collect();
        if detected() >= Level::Avx2 {
            let mut got = Vec::new();
            // SAFETY: detection confirmed avx2.
            unsafe { run_avx2(&cases, &mut got) };
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                for op in 0..8 {
                    assert_eq!(g[op].to_bits(), w[op].to_bits(), "avx2 case {i} op {op}");
                }
            }
        }
        if detected() >= Level::Avx512 {
            let mut got = Vec::new();
            // SAFETY: detection confirmed avx512f.
            unsafe { run_avx512(&cases, &mut got) };
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                for op in 0..8 {
                    assert_eq!(g[op].to_bits(), w[op].to_bits(), "avx512 case {i} op {op}");
                }
            }
        }
    }
}
