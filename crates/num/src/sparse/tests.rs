use std::sync::Arc;

use crate::linsolve::SolveError;

use super::*;

fn residual_inf(a: &SparseMatrix, x: &[f64], b: &[f64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ax, b)| (ax - b).abs())
        .fold(0.0, f64::max)
}

#[test]
fn from_coords_dedups_and_accumulates() {
    let coords = [(0, 0), (1, 1), (0, 0), (0, 1)];
    let (mut m, slots) = SparseMatrix::from_coords(2, &coords);
    assert_eq!(m.nnz(), 3);
    assert_eq!(slots[0], slots[2]);
    m.add_slot(slots[0], 1.0);
    m.add_slot(slots[2], 2.0);
    assert_eq!(m.get(0, 0), 3.0);
    assert_eq!(m.get(1, 0), 0.0);
}

#[test]
fn mul_vec_matches_dense() {
    let m = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, -1.0),
            (2, 0, 3.0),
            (2, 2, 4.0),
        ],
    );
    let x = [1.0, 2.0, 3.0];
    assert_eq!(m.mul_vec(&x), m.to_dense().mul_vec(&x));
}

#[test]
fn lu_solves_mna_like_system() {
    // A voltage-divider MNA shape: conductances plus a vsource branch
    // (zero diagonal — exercises pivoting).
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2e-3),
            (0, 1, -1e-3),
            (0, 2, 1.0),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (2, 0, 1.0),
        ],
    );
    let mut lu = SparseLu::new(&a).unwrap();
    let b = [0.0, 0.0, 2.0];
    let x = lu.solve(&b).unwrap();
    assert!(residual_inf(&a, &x, &b) < 1e-12);
    assert!((x[0] - 2.0).abs() < 1e-9);
    assert!((x[1] - 1.0).abs() < 1e-9);

    // Refactor with changed conductances, same pattern.
    let a2 = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 3e-3),
            (0, 1, -2e-3),
            (0, 2, 1.0),
            (1, 0, -2e-3),
            (1, 1, 3e-3),
            (2, 0, 1.0),
        ],
    );
    assert!(!lu.refactor(&a2).unwrap());
    let x = lu.solve(&b).unwrap();
    assert!(residual_inf(&a2, &x, &b) < 1e-12);
}

#[test]
fn btf_exposes_block_structure() {
    // The vsource MNA shape condenses into three 1×1 blocks: only the
    // diagonal blocks factor, the couplings stay in the off storage.
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2e-3),
            (0, 1, -1e-3),
            (0, 2, 1.0),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (2, 0, 1.0),
        ],
    );
    let sym = SymbolicLu::analyze(&a).unwrap();
    assert_eq!(sym.block_count(), 3);
    assert_eq!(sym.max_block_dim(), 1);
    assert!(sym.lu_nnz() >= a.nnz());

    // A strongly coupled arrow pattern is one irreducible block.
    let n = 5;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0));
        if i + 1 < n {
            t.push((i, n - 1, 1.0));
            t.push((n - 1, i, 1.0));
        }
    }
    let arrow = SparseMatrix::from_triplets(n, &t);
    let sym = SymbolicLu::analyze(&arrow).unwrap();
    assert_eq!(sym.block_count(), 1);
    assert_eq!(sym.max_block_dim(), n);
    // Min-degree eliminates the spokes first, so the arrow factors with
    // no fill at all.
    assert_eq!(sym.lu_nnz(), arrow.nnz());
}

#[test]
fn natural_ordering_still_solves() {
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2e-3),
            (0, 1, -1e-3),
            (0, 2, 1.0),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (2, 0, 1.0),
        ],
    );
    let opts = AnalyzeOptions {
        ordering: OrderingStrategy::Natural,
        scaling: Scaling::Off,
    };
    let mut lu = SparseLu::new_with(&a, opts).unwrap();
    assert_eq!(lu.symbolic().block_count(), 1);
    assert_eq!(lu.symbolic().options(), opts);
    let b = [0.0, 0.0, 2.0];
    let x = lu.solve(&b).unwrap();
    assert!(residual_inf(&a, &x, &b) < 1e-12);
    // Pivot-drift fallbacks preserve the options.
    assert!(!lu.refactor(&a).unwrap());
    assert_eq!(lu.symbolic().options(), opts);
}

#[test]
fn badly_scaled_rows_are_equilibrated() {
    // Rows straddling 18 decades: Auto scaling must engage, and the
    // solve must still recover the exact-ish solution.
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 3e9),
            (0, 1, 1e9),
            (1, 0, 1e-9),
            (1, 1, 2e-9),
            (1, 2, 1e-9),
            (2, 2, 5e-1),
        ],
    );
    let lu = SparseLu::new(&a).unwrap();
    assert!(lu.symbolic().is_scaled());
    let x_true = [1.0, -2.0, 3.0];
    let b = a.mul_vec(&x_true);
    let x = lu.solve(&b).unwrap();
    for (got, want) in x.iter().zip(&x_true) {
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
    // Scaling::Off on the same matrix still works (pivoting handles it).
    let opts = AnalyzeOptions {
        scaling: Scaling::Off,
        ..AnalyzeOptions::default()
    };
    let lu = SparseLu::new_with(&a, opts).unwrap();
    assert!(!lu.symbolic().is_scaled());
    let x = lu.solve(&b).unwrap();
    assert!(residual_inf(&a, &x, &b) < 1e-6);
}

#[test]
fn refactor_falls_back_on_pivot_drift() {
    // First values make (0,0) the natural pivot; the second set zeroes
    // it, forcing the reused order to fail and re-analyze.
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
    let mut lu = SparseLu::new(&a).unwrap();
    let drifted =
        SparseMatrix::from_triplets(2, &[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
    let reanalyzed = lu.refactor(&drifted).unwrap();
    assert!(reanalyzed);
    let x = lu.solve(&[1.0, 2.0]).unwrap();
    assert!(residual_inf(&drifted, &x, &[1.0, 2.0]) < 1e-12);
}

#[test]
fn singular_matrix_is_reported() {
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
    assert!(matches!(
        SparseLu::new(&a),
        Err(SolveError::Singular { .. })
    ));
}

#[test]
fn structurally_singular_matrix_is_reported() {
    // Column 1 carries no entries: the BTF matching fails before any
    // numeric work happens.
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 0, 2.0)]);
    assert!(matches!(
        SymbolicLu::analyze(&a),
        Err(SolveError::Singular { .. })
    ));
}

#[test]
fn fill_in_is_handled() {
    // Arrow matrix: dense last row/col creates fill during elimination.
    let n = 6;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0 + i as f64));
        if i + 1 < n {
            t.push((i, n - 1, 1.0));
            t.push((n - 1, i, 1.0));
        }
    }
    let a = SparseMatrix::from_triplets(n, &t);
    let mut lu = SparseLu::new(&a).unwrap();
    let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
    let x = lu.solve(&b).unwrap();
    assert!(residual_inf(&a, &x, &b) < 1e-12);
    assert!(lu.lu_nnz() >= a.nnz());
    // Refactor with perturbed values still solves tightly.
    let t2: Vec<(usize, usize, f64)> = t.iter().map(|&(i, j, v)| (i, j, v * 1.5 + 0.1)).collect();
    let a2 = SparseMatrix::from_triplets(n, &t2);
    lu.refactor(&a2).unwrap();
    let x = lu.solve(&b).unwrap();
    assert!(residual_inf(&a2, &x, &b) < 1e-12);
}

#[test]
fn permuted_inputs_solve_like_dense() {
    // A block system presented in scrambled order: BTF must untangle it
    // and agree with the dense reference solve.
    let t = [
        (0, 3, 2.0),
        (3, 0, 1.5),
        (3, 3, 0.5),
        (0, 0, 3.0),
        (1, 1, 4.0),
        (1, 4, 1.0),
        (4, 4, 2.5),
        (2, 2, 1.0),
        (4, 2, 0.25),
    ];
    let a = SparseMatrix::from_triplets(5, &t);
    let lu = SparseLu::new(&a).unwrap();
    let b = [1.0, -2.0, 0.5, 3.0, 0.25];
    let x = lu.solve(&b).unwrap();
    let dense = crate::linsolve::LuFactors::factor(a.to_dense()).unwrap();
    let want = dense.solve(&b).unwrap();
    for (got, want) in x.iter().zip(&want) {
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }
}

#[test]
fn dimension_mismatch_is_reported() {
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
    let mut lu = SparseLu::new(&a).unwrap();
    assert!(matches!(
        lu.solve(&[1.0]),
        Err(SolveError::DimensionMismatch {
            expected: 2,
            actual: 1
        })
    ));
    let b = SparseMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
    assert!(matches!(
        lu.refactor(&b),
        Err(SolveError::DimensionMismatch {
            expected: 2,
            actual: 3
        })
    ));
}

#[test]
fn stats_merge_accumulates() {
    let mut s = SolverStats::default();
    s.merge(&SolverStats {
        factorizations: 2,
        newton_iterations: 5,
        wall_seconds: 0.5,
        ..SolverStats::default()
    });
    s.merge(&SolverStats {
        factorizations: 1,
        steps_rejected: 3,
        wall_seconds: 0.25,
        ..SolverStats::default()
    });
    assert_eq!(s.factorizations, 3);
    assert_eq!(s.newton_iterations, 5);
    assert_eq!(s.steps_rejected, 3);
    assert!((s.wall_seconds - 0.75).abs() < 1e-12);
}

#[test]
fn symbolic_cache_counts_one_analysis_per_topology() {
    let cache = SymbolicCache::new();
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2e-3),
            (0, 1, -1e-3),
            (0, 2, 1.0),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (2, 0, 1.0),
        ],
    );
    // Same pattern, different values — as a second die would assemble.
    let mut a2 = a.clone();
    a2.zero_values();
    for s in 0..a.nnz() {
        a2.add_slot(s, a.values()[s] * 1.3);
    }
    let (lu, n1) = cache.factor(&a).unwrap();
    let (lu2, n2) = cache.factor(&a2).unwrap();
    assert_eq!((n1, n2), (1, 0), "second factor must hit the cache");
    assert_eq!(cache.len(), 1);
    assert!(Arc::ptr_eq(lu.symbolic(), lu2.symbolic()));
    let b = [0.0, 0.0, 2.0];
    assert!(residual_inf(&a, &lu.solve(&b).unwrap(), &b) < 1e-12);
    assert!(residual_inf(&a2, &lu2.solve(&b).unwrap(), &b) < 1e-12);

    // A different topology gets its own analysis.
    let c = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
    let (_, n3) = cache.factor(&c).unwrap();
    assert_eq!(n3, 1);
    assert_eq!(cache.len(), 2);
}

#[test]
fn symbolic_cache_keys_include_options() {
    // One topology, two option sets: the cache must keep them apart so a
    // Natural-order analysis can never serve a BTF request (their
    // patterns differ).
    let cache = SymbolicCache::new();
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2e-3),
            (0, 1, -1e-3),
            (0, 2, 1.0),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (2, 0, 1.0),
        ],
    );
    let natural = AnalyzeOptions {
        ordering: OrderingStrategy::Natural,
        scaling: Scaling::Off,
    };
    let (sym_default, n1) = cache.symbolic_for(&a).unwrap();
    let (sym_natural, n2) = cache.symbolic_for_with(&a, natural).unwrap();
    assert_eq!((n1, n2), (true, true), "distinct keys, distinct analyses");
    assert_eq!(cache.len(), 2);
    assert!(!Arc::ptr_eq(&sym_default, &sym_natural));
    // Re-requesting either option set hits its own entry.
    let (again, analyzed) = cache.symbolic_for_with(&a, natural).unwrap();
    assert!(!analyzed);
    assert!(Arc::ptr_eq(&again, &sym_natural));
}

#[test]
fn symbolic_cache_reanalyzes_when_shared_pivots_fail() {
    // First matrix pivots naturally at (0,0); the second zeroes that
    // entry so the cached order is unusable and a private analysis
    // (counted, not cached) must take over.
    let cache = SymbolicCache::new();
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
    let (_, n1) = cache.factor(&a).unwrap();
    let drifted =
        SparseMatrix::from_triplets(2, &[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
    let (lu, n2) = cache.factor(&drifted).unwrap();
    assert_eq!((n1, n2), (1, 1), "hit + pivot fallback = one analysis");
    assert_eq!(cache.len(), 1, "fallback analysis must not poison cache");
    let x = lu.solve(&[1.0, 2.0]).unwrap();
    assert!(residual_inf(&drifted, &x, &[1.0, 2.0]) < 1e-12);
}

#[test]
fn cached_factor_matches_fresh_factor_bitwise() {
    // `with_symbolic` over a cached analysis must produce the same
    // factors a fresh `SparseLu::new` would — the bit-neutrality the
    // scalar engine's per-measurement sharing relies on.
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2e-3),
            (0, 1, -1e-3),
            (0, 2, 1.0),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (2, 0, 1.0),
        ],
    );
    let cache = SymbolicCache::new();
    cache.symbolic_for(&a).unwrap();
    let (cached, _) = cache.factor(&a).unwrap();
    let fresh = SparseLu::new(&a).unwrap();
    let b = [0.25, -1.5, 3.0];
    assert_eq!(
        cached.solve(&b).unwrap(),
        fresh.solve(&b).unwrap(),
        "shared symbolic analysis must be bit-neutral"
    );
}

#[test]
fn mul_vec_lanes_matches_scalar_mul_vec() {
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2.0),
            (0, 2, -1.0),
            (1, 1, 3.0),
            (2, 0, 0.5),
            (2, 2, 4.0),
        ],
    );
    let k = 2;
    let scale = [1.0, -0.3];
    let mut vals = Vec::with_capacity(a.nnz() * k);
    for s in 0..a.nnz() {
        for &sc in &scale {
            vals.push(a.values()[s] * sc);
        }
    }
    let x = [1.0, -2.0, 0.25];
    let xi: Vec<f64> = x.iter().flat_map(|&v| vec![v, 2.0 * v]).collect();
    let mut y = vec![0.0; 3 * k];
    a.mul_vec_lanes_into(&vals, k, &xi, &mut y);
    let y0 = a.mul_vec(&x);
    for i in 0..3 {
        assert!((y[i * k] - y0[i] * scale[0]).abs() < 1e-15);
        assert!((y[i * k + 1] - y0[i] * scale[1] * 2.0).abs() < 1e-15);
    }
}

#[test]
fn batched_lu_matches_per_lane_scalar_lu() {
    // MNA-shaped system with fill, three lanes of perturbed values.
    let n = 6;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0 + i as f64));
        if i + 1 < n {
            t.push((i, n - 1, 1.0));
            t.push((n - 1, i, 1.0));
        }
    }
    let a = SparseMatrix::from_triplets(n, &t);
    let k = 3;
    let scale = [1.0, 1.07, 0.91];
    let mut vals = Vec::with_capacity(a.nnz() * k);
    for s in 0..a.nnz() {
        for &sc in &scale {
            vals.push(a.values()[s] * sc);
        }
    }
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    let mut blu = BatchedLu::new(Arc::clone(&sym), k);
    assert_eq!(blu.refactor(&a, &vals).unwrap(), 0);

    let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
    let mut bb: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
    blu.solve_in_place(&mut bb);

    for (lane, sc) in scale.iter().enumerate() {
        let mut al = a.clone();
        al.zero_values();
        for s in 0..a.nnz() {
            al.add_slot(s, a.values()[s] * sc);
        }
        let lu = SparseLu::with_symbolic(Arc::clone(&sym), &al).unwrap();
        let want = lu.solve(&b).unwrap();
        for i in 0..n {
            assert!(
                (bb[i * k + lane] - want[i]).abs() < 1e-12,
                "lane {lane} row {i}: {} vs {}",
                bb[i * k + lane],
                want[i]
            );
        }
    }
}

/// Every monomorphized lane width (and one dynamic-fallback width)
/// must produce the same solutions: the dispatch arm is a codegen
/// choice, not a numerical one.
#[test]
fn batched_lu_widths_match_per_lane_scalar_lu() {
    let n = 6;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0 + i as f64));
        if i + 1 < n {
            t.push((i, n - 1, 1.0));
            t.push((n - 1, i, 1.0));
        }
    }
    let a = SparseMatrix::from_triplets(n, &t);
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
    for k in [1usize, 2, 4, 8, 16, 11] {
        let scale: Vec<f64> = (0..k).map(|l| 1.0 + 0.03 * l as f64).collect();
        let mut vals = Vec::with_capacity(a.nnz() * k);
        for s in 0..a.nnz() {
            for &sc in &scale {
                vals.push(a.values()[s] * sc);
            }
        }
        let mut blu = BatchedLu::new(Arc::clone(&sym), k);
        assert_eq!(blu.refactor(&a, &vals).unwrap(), 0);
        let mut bb: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
        blu.solve_in_place(&mut bb);
        for (lane, sc) in scale.iter().enumerate() {
            let mut al = a.clone();
            al.zero_values();
            for s in 0..a.nnz() {
                al.add_slot(s, a.values()[s] * sc);
            }
            let lu = SparseLu::with_symbolic(Arc::clone(&sym), &al).unwrap();
            let want = lu.solve(&b).unwrap();
            for i in 0..n {
                assert!(
                    (bb[i * k + lane] - want[i]).abs() < 1e-12,
                    "k {k} lane {lane} row {i}: {} vs {}",
                    bb[i * k + lane],
                    want[i]
                );
            }
        }
    }
}

#[test]
fn batched_lu_handles_multi_block_systems() {
    // The vsource MNA shape (three BTF blocks, off-block couplings) in
    // lanes: the batched path must exercise the off storage and agree
    // with the scalar solver per lane.
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 2e-3),
            (0, 1, -1e-3),
            (0, 2, 1.0),
            (1, 0, -1e-3),
            (1, 1, 2e-3),
            (2, 0, 1.0),
        ],
    );
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    assert!(sym.block_count() > 1, "shape must exercise the BTF path");
    let k = 4;
    let scale = [1.0, 1.1, 0.9, 1.25];
    let mut vals = Vec::with_capacity(a.nnz() * k);
    for s in 0..a.nnz() {
        for &sc in &scale {
            vals.push(a.values()[s] * sc);
        }
    }
    let mut blu = BatchedLu::new(Arc::clone(&sym), k);
    assert_eq!(blu.refactor(&a, &vals).unwrap(), 0);
    let b = [0.0, 0.0, 2.0];
    let mut bb: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
    blu.solve_in_place(&mut bb);
    for (lane, sc) in scale.iter().enumerate() {
        let mut al = a.clone();
        al.zero_values();
        for s in 0..a.nnz() {
            al.add_slot(s, a.values()[s] * sc);
        }
        let lu = SparseLu::with_symbolic(Arc::clone(&sym), &al).unwrap();
        let want = lu.solve(&b).unwrap();
        for i in 0..3 {
            assert!(
                (bb[i * k + lane] - want[i]).abs() < 1e-12,
                "lane {lane} row {i}"
            );
        }
    }
}

#[test]
fn batched_lu_reanalyzes_from_the_offending_lane() {
    // Lane 1 zeroes the entry the shared pivot order leads with; the
    // batch must re-analyze once and still solve every lane.
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    let k = 2;
    let lane_vals = [[5.0, 1.0, 1.0, 0.1], [0.0, 1.0, 1.0, 0.1]];
    let vals: Vec<f64> = (0..a.nnz())
        .flat_map(|s| (0..k).map(move |lane| lane_vals[lane][s]))
        .collect();
    let mut blu = BatchedLu::new(sym, k);
    let analyses = blu.refactor(&a, &vals).unwrap();
    assert_eq!(analyses, 1);

    let rhs = [1.0, 2.0];
    let mut bb: Vec<f64> = rhs.iter().flat_map(|&v| vec![v; k]).collect();
    blu.solve_in_place(&mut bb);
    for lane in 0..k {
        let al = SparseMatrix::from_triplets(
            2,
            &[
                (0, 0, lane_vals[lane][0]),
                (0, 1, lane_vals[lane][1]),
                (1, 0, lane_vals[lane][2]),
                (1, 1, lane_vals[lane][3]),
            ],
        );
        let x: Vec<f64> = (0..2).map(|i| bb[i * k + lane]).collect();
        assert!(residual_inf(&al, &x, &rhs) < 1e-12, "lane {lane}");
    }
}

/// A masked, lane-at-a-time refactor must store bit-identical factors
/// to one full-batch sweep of the same values — this is what lets the
/// asynchronous engine refresh lanes at different iterations without
/// perturbing their trajectories.
#[test]
fn masked_refactor_is_bit_identical_to_full_refactor() {
    let n = 6;
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0 + i as f64));
        if i + 1 < n {
            t.push((i, n - 1, 1.0));
            t.push((n - 1, i, 1.0));
        }
    }
    let a = SparseMatrix::from_triplets(n, &t);
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
    for k in [1usize, 3, 4, 16] {
        let scale: Vec<f64> = (0..k).map(|l| 1.0 + 0.03 * l as f64).collect();
        let mut vals = Vec::with_capacity(a.nnz() * k);
        for s in 0..a.nnz() {
            for &sc in &scale {
                vals.push(a.values()[s] * sc);
            }
        }
        let mut full = BatchedLu::new(Arc::clone(&sym), k);
        assert_eq!(full.refactor(&a, &vals).unwrap(), 0);
        let mut masked = BatchedLu::new(Arc::clone(&sym), k);
        // Refresh lanes one at a time, in scrambled order.
        for lane in (0..k).rev() {
            let mut mask = vec![false; k];
            mask[lane] = true;
            let (analyses, invalidated) = masked.refactor_masked(&a, &vals, &mask).unwrap();
            assert_eq!(analyses, 0);
            assert!(!invalidated);
        }
        let mut x_full: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
        let mut x_masked = x_full.clone();
        full.solve_in_place(&mut x_full);
        masked.solve_in_place(&mut x_masked);
        assert_eq!(x_full, x_masked, "k {k}: masked factors drifted");
    }
}

/// Same bit-identity contract, but over a multi-block BTF system with
/// off-block storage and active scaling — the paths the staged kernel
/// added on top of the classic sweep.
#[test]
fn masked_refactor_is_bit_identical_on_scaled_blocks() {
    let a = SparseMatrix::from_triplets(
        3,
        &[
            (0, 0, 3e9),
            (0, 1, 1e9),
            (1, 0, 1e-9),
            (1, 1, 2e-9),
            (1, 2, 1e-9),
            (2, 2, 5e-1),
        ],
    );
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    assert!(sym.is_scaled());
    for k in [2usize, 5] {
        let scale: Vec<f64> = (0..k).map(|l| 1.0 + 0.11 * l as f64).collect();
        let mut vals = Vec::with_capacity(a.nnz() * k);
        for s in 0..a.nnz() {
            for &sc in &scale {
                vals.push(a.values()[s] * sc);
            }
        }
        let mut full = BatchedLu::new(Arc::clone(&sym), k);
        assert_eq!(full.refactor(&a, &vals).unwrap(), 0);
        let mut masked = BatchedLu::new(Arc::clone(&sym), k);
        for lane in 0..k {
            let mut mask = vec![false; k];
            mask[lane] = true;
            let (analyses, invalidated) = masked.refactor_masked(&a, &vals, &mask).unwrap();
            assert_eq!((analyses, invalidated), (0, false));
        }
        let b = [1.0, -0.5, 2.0];
        let mut x_full: Vec<f64> = b.iter().flat_map(|&v| vec![v; k]).collect();
        let mut x_masked = x_full.clone();
        full.solve_in_place(&mut x_full);
        masked.solve_in_place(&mut x_masked);
        assert_eq!(x_full, x_masked, "k {k}: masked factors drifted");
    }
}

/// Pivot drift in a masked lane forces a shared re-analysis, which the
/// call must report so the caller can refresh the unmasked lanes.
#[test]
fn masked_refactor_reports_invalidation_on_reanalysis() {
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.1)]);
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    let k = 2;
    let lane_vals = [[5.0, 1.0, 1.0, 0.1], [0.0, 1.0, 1.0, 0.1]];
    let vals: Vec<f64> = (0..a.nnz())
        .flat_map(|s| (0..k).map(move |lane| lane_vals[lane][s]))
        .collect();
    let mut blu = BatchedLu::new(sym, k);
    // Lane 0 factors fine under the original order.
    let (analyses, invalidated) = blu.refactor_masked(&a, &vals, &[true, false]).unwrap();
    assert_eq!((analyses, invalidated), (0, false));
    // Lane 1 needs a new pivot order: lane 0's factors are now gone.
    let (analyses, invalidated) = blu.refactor_masked(&a, &vals, &[false, true]).unwrap();
    assert_eq!(analyses, 1);
    assert!(invalidated);
    // Refreshing lane 0 under the new order restores a solvable batch.
    let (analyses, _) = blu.refactor_masked(&a, &vals, &[true, false]).unwrap();
    assert_eq!(analyses, 0);
    let rhs = [1.0, 2.0];
    let mut bb: Vec<f64> = rhs.iter().flat_map(|&v| vec![v; k]).collect();
    blu.solve_in_place(&mut bb);
    for lane in 0..k {
        let al = SparseMatrix::from_triplets(
            2,
            &[
                (0, 0, lane_vals[lane][0]),
                (0, 1, lane_vals[lane][1]),
                (1, 0, lane_vals[lane][2]),
                (1, 1, lane_vals[lane][3]),
            ],
        );
        let x: Vec<f64> = (0..2).map(|i| bb[i * k + lane]).collect();
        assert!(residual_inf(&al, &x, &rhs) < 1e-12, "lane {lane}");
    }
}

#[test]
fn batched_lu_reports_singular_lane() {
    let a = SparseMatrix::from_triplets(2, &[(0, 0, 3.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)]);
    // Lane 0 is fine (identity-ish), lane 1 is genuinely singular.
    let lane_vals = [[1.0, 0.0, 0.0, 1.0], [1.0, 2.0, 2.0, 4.0]];
    let vals: Vec<f64> = (0..a.nnz())
        .flat_map(|s| (0..2).map(move |lane| lane_vals[lane][s]))
        .collect();
    let sym = Arc::new(SymbolicLu::analyze(&a).unwrap());
    let mut blu = BatchedLu::new(sym, 2);
    assert!(matches!(
        blu.refactor(&a, &vals),
        Err(SolveError::Singular { .. })
    ));
}
