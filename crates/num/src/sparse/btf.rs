//! Stage 1 of the symbolic pipeline: permutation to block (lower)
//! triangular form.
//!
//! A maximum matching of the bipartite row/column graph (MC21-style
//! augmenting paths) puts a structural nonzero on every diagonal
//! position; Tarjan's algorithm then condenses the matched digraph into
//! strongly connected components. Emitting the components in Tarjan
//! completion order yields a block *lower* triangular permutation: every
//! entry of the permuted matrix lies in its diagonal block or in the
//! columns of an earlier block, so LU factorization can proceed block by
//! block and the off-diagonal blocks never fill in.
//!
//! Both passes are purely structural (they look only at the pattern,
//! never at values, so explicit zeros count as entries — the analysis
//! must stay valid for every value set stamped over the topology) and
//! iterative (no recursion, so 10k-node systems cannot overflow the
//! stack).

const NONE: usize = usize::MAX;

/// A block-triangular permutation of a square pattern.
pub(super) struct BtfForm {
    /// Row permutation: permuted position `i` holds original row `rperm[i]`.
    pub(super) rperm: Vec<usize>,
    /// Column permutation: permuted position `j` holds original column
    /// `cperm[j]`. Positions pair up: `(rperm[p], cperm[p])` is a matched
    /// structural nonzero, so every diagonal of the permuted matrix is an
    /// entry of the pattern.
    pub(super) cperm: Vec<usize>,
    /// Block boundaries in permuted index space: block `b` spans
    /// `block_ptr[b]..block_ptr[b + 1]`.
    pub(super) block_ptr: Vec<usize>,
}

/// The trivial decomposition: identity permutations, one block.
pub(super) fn natural(n: usize) -> BtfForm {
    BtfForm {
        rperm: (0..n).collect(),
        cperm: (0..n).collect(),
        block_ptr: if n == 0 { vec![0] } else { vec![0, n] },
    }
}

/// Decomposes the pattern `(n, row_ptr, col_idx)` to block lower
/// triangular form. Fails with the first unmatchable column when the
/// pattern is structurally singular.
pub(super) fn decompose(n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Result<BtfForm, usize> {
    let row_of_col = maximum_matching(n, row_ptr, col_idx)?;
    Ok(condense(n, row_ptr, col_idx, &row_of_col))
}

/// MC21-style maximum matching: returns, for every column, the row
/// matched to it, or `Err(col)` for the first column no augmenting path
/// can reach a free row for (the pattern is structurally singular).
fn maximum_matching(n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Result<Vec<usize>, usize> {
    let mut row_of_col = vec![NONE; n];
    let mut col_of_row = vec![NONE; n];
    // Cheap pass: greedily take the first free column of every row.
    for r in 0..n {
        for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
            if row_of_col[c] == NONE {
                row_of_col[c] = r;
                col_of_row[r] = c;
                break;
            }
        }
    }
    // Augmenting-path pass for the rows the cheap pass missed. The DFS
    // is iterative; `visited` carries a per-start stamp so it resets in
    // O(1) between starts.
    let mut visited = vec![0u32; n];
    let mut stamp = 0u32;
    // Frame: (row, next CSR slot to scan, column chosen on this level).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for start in 0..n {
        if col_of_row[start] != NONE {
            continue;
        }
        stamp += 1;
        stack.clear();
        stack.push((start, row_ptr[start], NONE));
        let mut augmented = false;
        'dfs: while let Some(&mut (r, ref mut pos, ref mut chosen)) = stack.last_mut() {
            // Advance to the next unvisited column of row r.
            let mut next = NONE;
            while *pos < row_ptr[r + 1] {
                let c = col_idx[*pos];
                *pos += 1;
                if visited[c] != stamp {
                    visited[c] = stamp;
                    next = c;
                    break;
                }
            }
            if next == NONE {
                stack.pop();
                continue;
            }
            *chosen = next;
            let occupant = row_of_col[next];
            if occupant == NONE {
                // Free column: flip the matching along the whole path.
                for &(fr, _, fc) in &stack {
                    row_of_col[fc] = fr;
                    col_of_row[fr] = fc;
                }
                augmented = true;
                break 'dfs;
            }
            stack.push((occupant, row_ptr[occupant], NONE));
        }
        if !augmented {
            // No augmenting path from `start`: some column is structurally
            // unmatchable. Report the first still-free column.
            let col = row_of_col.iter().position(|&r| r == NONE).unwrap_or(start);
            return Err(col);
        }
    }
    Ok(row_of_col)
}

/// Tarjan SCC condensation of the matched digraph. Nodes are columns;
/// column `u` has an edge to column `v` when row `row_of_col[u]` holds an
/// entry in column `v`. Components are emitted in completion order, which
/// is reverse topological — exactly the block *lower* triangular order.
fn condense(n: usize, row_ptr: &[usize], col_idx: &[usize], row_of_col: &[usize]) -> BtfForm {
    let mut index = vec![NONE; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    // Frame: (node, next CSR slot of its row).
    let mut call: Vec<(usize, usize)> = Vec::new();
    let mut counter = 0usize;
    let mut rperm = Vec::with_capacity(n);
    let mut cperm = Vec::with_capacity(n);
    let mut block_ptr = vec![0usize];

    for root in 0..n {
        if index[root] != NONE {
            continue;
        }
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        call.push((root, row_ptr[row_of_col[root]]));
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            let row = row_of_col[v];
            if *pos < row_ptr[row + 1] {
                let w = col_idx[*pos];
                *pos += 1;
                if w == v {
                    continue; // self loop: the matched diagonal itself
                }
                if index[w] == NONE {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    scc_stack.push(w);
                    on_stack[w] = true;
                    call.push((w, row_ptr[row_of_col[w]]));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            // Node finished: emit its component if it is a root.
            if low[v] == index[v] {
                let base = cperm.len();
                loop {
                    let w = scc_stack.pop().expect("SCC stack underflow");
                    on_stack[w] = false;
                    cperm.push(w);
                    if w == v {
                        break;
                    }
                }
                // Deterministic member order inside the block (the
                // fill-reducing pass reorders it anyway).
                cperm[base..].sort_unstable();
                block_ptr.push(cperm.len());
            }
            call.pop();
            if let Some(&mut (parent, _)) = call.last_mut() {
                low[parent] = low[parent].min(low[v]);
            }
        }
    }
    for &c in &cperm {
        rperm.push(row_of_col[c]);
    }
    BtfForm {
        rperm,
        cperm,
        block_ptr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseMatrix;

    fn decompose_matrix(a: &SparseMatrix) -> Result<BtfForm, usize> {
        decompose(a.n, &a.row_ptr, &a.col_idx)
    }

    /// Checks the defining invariant: every entry of the permuted matrix
    /// lies in its diagonal block or in the columns of an earlier block.
    fn assert_block_lower(a: &SparseMatrix, f: &BtfForm) {
        let n = a.dim();
        let mut cinv = vec![0usize; n];
        for (p, &c) in f.cperm.iter().enumerate() {
            cinv[c] = p;
        }
        let block_of = |p: usize| f.block_ptr.iter().position(|&b| b > p).unwrap() - 1;
        for (p, &r) in f.rperm.iter().enumerate() {
            let rb = block_of(p);
            let (cols, _) = a.row(r);
            for &c in cols {
                assert!(
                    block_of(cinv[c]) <= rb,
                    "entry ({r}, {c}) lands above the block diagonal"
                );
            }
        }
        // Matched diagonal: (rperm[p], cperm[p]) is always a pattern entry.
        for p in 0..n {
            assert!(a.slot_of(f.rperm[p], f.cperm[p]).is_some());
        }
    }

    #[test]
    fn lower_triangular_pattern_gives_singleton_blocks() {
        let a = SparseMatrix::from_triplets(
            4,
            &[
                (0, 0, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (2, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
            ],
        );
        let f = decompose_matrix(&a).unwrap();
        assert_eq!(f.block_ptr.len() - 1, 4);
        assert_block_lower(&a, &f);
    }

    #[test]
    fn zero_diagonal_vsource_shape_is_matched() {
        // MNA vsource branch: structural zero at (2, 2) forces the
        // matching to pair row 2 with column 0 and row 0 with column 2.
        let a = SparseMatrix::from_triplets(
            3,
            &[
                (0, 0, 2e-3),
                (0, 1, -1e-3),
                (0, 2, 1.0),
                (1, 0, -1e-3),
                (1, 1, 2e-3),
                (2, 0, 1.0),
            ],
        );
        let f = decompose_matrix(&a).unwrap();
        assert_block_lower(&a, &f);
        assert_eq!(f.block_ptr.len() - 1, 3, "this shape condenses fully");
    }

    #[test]
    fn strongly_connected_pattern_is_one_block() {
        // Arrow matrix: every node couples through the last one.
        let n = 5;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 1.0));
            if i + 1 < n {
                t.push((i, n - 1, 1.0));
                t.push((n - 1, i, 1.0));
            }
        }
        let a = SparseMatrix::from_triplets(n, &t);
        let f = decompose_matrix(&a).unwrap();
        assert_eq!(f.block_ptr, vec![0, n]);
        assert_block_lower(&a, &f);
    }

    #[test]
    fn structurally_singular_pattern_is_rejected() {
        // Column 1 has no entries at all.
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(decompose_matrix(&a).is_err());
    }

    #[test]
    fn empty_matrix_decomposes() {
        let (a, _) = SparseMatrix::from_coords(0, &[]);
        let f = decompose_matrix(&a).unwrap();
        assert_eq!(f.block_ptr, vec![0]);
    }

    #[test]
    fn explicit_zeros_count_as_structure() {
        // The (1, 1) entry is numerically zero but structurally present;
        // matching must still use the full pattern.
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 0.0), (0, 1, 1.0), (1, 1, 0.0)]);
        let f = decompose_matrix(&a).unwrap();
        assert_block_lower(&a, &f);
    }
}
