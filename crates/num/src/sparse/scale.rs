//! Stage 3 of the symbolic pipeline: optional row/column equilibration.
//!
//! MNA Jacobians mix unit-magnitude voltage-source stamps with device
//! conductances that collapse toward zero at low V_DD, so row magnitudes
//! can straddle many decades. Equilibration divides each row, then each
//! column, by a power of two near its largest magnitude. Powers of two
//! multiply exactly in binary floating point: scaling changes exponents
//! only, never mantissas, so it cannot introduce rounding of its own —
//! it only improves the pivot comparisons made on the scaled values.
//!
//! The factors are computed once per symbolic analysis (from the values
//! the analysis saw) and stored in the [`SymbolicLu`](super::SymbolicLu),
//! so every refactor and solve that reuses the analysis applies the same
//! exact scaling.

use super::SparseMatrix;

/// Row/column equilibration policy for the symbolic analysis, part of
/// [`AnalyzeOptions`](super::AnalyzeOptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scaling {
    /// Never scale. Factors are identity; the kernel behaves like the
    /// unscaled classic path.
    Off,
    /// Scale only when the row magnitudes are badly spread (their maxima
    /// straddle more than [`AUTO_SPREAD`] ×). The default: well-scaled
    /// systems keep bit-identical arithmetic with `Off`, badly scaled
    /// ones get equilibrated pivoting.
    #[default]
    Auto,
    /// Always scale.
    Full,
}

/// `Auto` enables scaling when `max(row max) / min(row max)` exceeds
/// this spread.
pub const AUTO_SPREAD: f64 = 1e6;

/// Computes `(row_scale, col_scale, scaled)` for `a` under `mode`. The
/// factors are exact powers of two; when `scaled` is false both vectors
/// are all ones.
pub(super) fn equilibrate(a: &SparseMatrix, mode: Scaling) -> (Vec<f64>, Vec<f64>, bool) {
    let n = a.dim();
    let identity = || (vec![1.0; n], vec![1.0; n], false);
    if matches!(mode, Scaling::Off) || n == 0 {
        return identity();
    }
    // Row maxima of |A|.
    let mut row_max = vec![0.0f64; n];
    for (i, rm) in row_max.iter_mut().enumerate() {
        for s in a.row_ptr[i]..a.row_ptr[i + 1] {
            *rm = rm.max(a.values[s].abs());
        }
    }
    if matches!(mode, Scaling::Auto) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &m in &row_max {
            if m > 0.0 && m.is_finite() {
                lo = lo.min(m);
                hi = hi.max(m);
            }
        }
        if hi <= lo * AUTO_SPREAD {
            return identity();
        }
    }
    let row_scale: Vec<f64> = row_max.iter().map(|&m| pow2_recip(m)).collect();
    // Column maxima of the row-scaled matrix.
    let mut col_max = vec![0.0f64; n];
    for (i, &rs) in row_scale.iter().enumerate() {
        for s in a.row_ptr[i]..a.row_ptr[i + 1] {
            let v = (a.values[s] * rs).abs();
            col_max[a.col_idx[s]] = col_max[a.col_idx[s]].max(v);
        }
    }
    let col_scale: Vec<f64> = col_max.iter().map(|&m| pow2_recip(m)).collect();
    (row_scale, col_scale, true)
}

/// The reciprocal power of two nearest `m`'s magnitude: an exact factor
/// that maps `m` into `[1, 2)`. Zero, infinite or NaN magnitudes scale
/// by 1 (they carry no usable exponent).
fn pow2_recip(m: f64) -> f64 {
    if !m.is_finite() || m <= 0.0 {
        return 1.0;
    }
    // Clamp to the normal range so the reciprocal is itself a normal
    // power of two (subnormal rows would otherwise overflow the factor).
    let e = (m.log2().floor() as i32).clamp(-1000, 1000);
    2.0f64.powi(-e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_identity() {
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 1e9), (1, 1, 1e-9)]);
        let (rs, cs, scaled) = equilibrate(&a, Scaling::Off);
        assert!(!scaled);
        assert!(rs.iter().chain(&cs).all(|&v| v == 1.0));
    }

    #[test]
    fn auto_skips_well_scaled_systems() {
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 0.5)]);
        let (_, _, scaled) = equilibrate(&a, Scaling::Auto);
        assert!(!scaled);
    }

    #[test]
    fn auto_engages_on_badly_spread_rows() {
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 1e9), (0, 1, 1e8), (1, 1, 1e-9)]);
        let (rs, _, scaled) = equilibrate(&a, Scaling::Auto);
        assert!(scaled);
        // Scaled row maxima land in [1, 2).
        assert!((1.0..2.0).contains(&(1e9 * rs[0])));
        assert!((1.0..2.0).contains(&(1e-9 * rs[1])));
    }

    #[test]
    fn factors_are_exact_powers_of_two() {
        let a = SparseMatrix::from_triplets(2, &[(0, 0, 3.7e12), (1, 0, 1.0), (1, 1, 5.1e-13)]);
        let (rs, cs, scaled) = equilibrate(&a, Scaling::Full);
        assert!(scaled);
        for &f in rs.iter().chain(&cs) {
            assert!(f > 0.0);
            // A power of two has an all-zero mantissa field.
            assert_eq!(f.to_bits() & ((1u64 << 52) - 1), 0, "{f} is not 2^k");
        }
    }

    #[test]
    fn degenerate_magnitudes_scale_by_one() {
        assert_eq!(pow2_recip(0.0), 1.0);
        assert_eq!(pow2_recip(f64::INFINITY), 1.0);
        assert_eq!(pow2_recip(f64::NAN), 1.0);
    }
}
