//! Numeric stage: refactorization along a fixed analysis and the
//! block-triangular solve.

use std::sync::Arc;

use crate::linsolve::SolveError;

use super::symbolic::{AnalyzeOptions, SymbolicLu};
use super::{SparseMatrix, PIVOT_EPS, PIVOT_GROWTH_LIMIT};

/// Sparse LU factorization with a reusable symbolic analysis.
///
/// Construction ([`SparseLu::new`]) performs the expensive part once:
/// the staged analysis ([`SymbolicLu::analyze`] — BTF, fill-reducing
/// ordering, optional scaling, threshold partial pivoting) chooses the
/// permutations and records the fill-in structure of `L + U`. Subsequent
/// [`SparseLu::refactor`] calls reuse both, reducing the per-iteration
/// cost from O(n³) to O(nnz(LU)) — the dominant win of the simulator's
/// Newton loops, where the matrix values change every iteration but the
/// pattern never does.
///
/// If the values drift so far that a reused pivot becomes unusable,
/// `refactor` transparently falls back to a fresh analysis under the
/// same [`AnalyzeOptions`] (and reports it, so
/// [`SolverStats`](super::SolverStats) can count re-analyses).
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::{SparseLu, SparseMatrix};
///
/// # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
/// let mut a = SparseMatrix::from_triplets(
///     3,
///     &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0), (2, 2, 2.0)],
/// );
/// let mut lu = SparseLu::new(&a)?;
/// let x = lu.solve(&[5.0, 4.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// assert!((x[2] - 1.0).abs() < 1e-12);
///
/// // Same pattern, new values: refactor without re-analysis.
/// a = SparseMatrix::from_triplets(
///     3,
///     &[(0, 0, 2.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 5.0), (2, 2, 1.0)],
/// );
/// let reanalyzed = lu.refactor(&a)?;
/// assert!(!reanalyzed);
/// let x = lu.solve(&[2.0, 5.0, 1.0])?;
/// assert!(x.iter().all(|v| (v - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    /// Shared permutations, scaling and fill-in pattern.
    sym: Arc<SymbolicLu>,
    /// Values of the block-diagonal `L + U` (parallel to the analysis'
    /// LU pattern).
    lu_values: Vec<f64>,
    /// Scaled values of the below-block entries (parallel to the
    /// analysis' off pattern).
    off_values: Vec<f64>,
    /// Dense scatter workspace reused by refactor.
    work: Vec<f64>,
    /// `lu.numeric` timing handle, resolved once at construction (the
    /// established hot-path metrics idiom); `None` when metrics were
    /// disabled at that point, making the per-refactor cost a plain
    /// `Option` check.
    numeric_hist: Option<Arc<rotsv_obs::Histogram>>,
}

impl SparseLu {
    /// Analyzes and factors `a` under [`AnalyzeOptions::default`]: BTF
    /// decomposition, per-block minimum-degree ordering, automatic
    /// scaling, threshold partial pivoting, and the numeric factors.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no usable pivot exists.
    pub fn new(a: &SparseMatrix) -> Result<Self, SolveError> {
        Self::new_with(a, AnalyzeOptions::default())
    }

    /// [`SparseLu::new`] with explicit [`AnalyzeOptions`]. Pivot-drift
    /// re-analyses triggered later by [`SparseLu::refactor`] keep these
    /// options.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no usable pivot exists.
    pub fn new_with(a: &SparseMatrix, opts: AnalyzeOptions) -> Result<Self, SolveError> {
        let sym = Arc::new(SymbolicLu::analyze_with(a, opts)?);
        Self::with_symbolic(sym, a)
    }

    /// Factors `a` reusing an existing symbolic analysis of the same
    /// pattern (no `lu_analyze` is performed).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `a`'s dimension
    /// differs from the analyzed one, and [`SolveError::Singular`] when
    /// the recorded pivot order is unusable for `a`'s values (callers
    /// fall back to a fresh [`SparseLu::new`]).
    pub fn with_symbolic(sym: Arc<SymbolicLu>, a: &SparseMatrix) -> Result<Self, SolveError> {
        if a.dim() != sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: sym.n,
                actual: a.dim(),
            });
        }
        let mut lu = Self {
            lu_values: vec![0.0; sym.lu_col_idx.len()],
            off_values: vec![0.0; sym.off_col_idx.len()],
            work: vec![0.0; sym.n],
            sym,
            numeric_hist: rotsv_obs::metrics_enabled().then(|| rotsv_obs::histogram("lu.numeric")),
        };
        lu.refactor_in_place(a)?;
        Ok(lu)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Number of stored entries in the factors (a measure of fill-in);
    /// see [`SymbolicLu::lu_nnz`].
    pub fn lu_nnz(&self) -> usize {
        self.sym.lu_nnz()
    }

    /// The shared symbolic analysis backing this factorization.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.sym
    }

    /// Recomputes the numeric factors of `a` (same pattern as analyzed)
    /// with the recorded pivot order. Returns `true` when pivot drift
    /// forced a fresh analysis, `false` on the fast path.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when the matrix is numerically
    /// singular even after re-analysis, and
    /// [`SolveError::DimensionMismatch`] if `a` has a different
    /// dimension.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<bool, SolveError> {
        let _span = rotsv_obs::span!("lu_refactor");
        if a.dim() != self.sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.sym.n,
                actual: a.dim(),
            });
        }
        match self.refactor_in_place(a) {
            Ok(()) => Ok(false),
            Err(SolveError::Singular { .. }) => {
                // Values drifted away from the analyzed pivot order: redo
                // the full analysis (new permutations, new fill pattern)
                // under the same options.
                *self = Self::new_with(a, self.sym.opts)?;
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Numeric refactorization along the fixed pattern (Doolittle by
    /// rows with a dense scatter workspace). The analysis' scatter map
    /// routes each entry of `a` — scaled by its equilibration factor —
    /// to its in-block work position or its off-block slot; elimination
    /// runs only inside the diagonal blocks.
    fn refactor_in_place(&mut self, a: &SparseMatrix) -> Result<(), SolveError> {
        let t0 = self
            .numeric_hist
            .as_ref()
            .map(|_| std::time::Instant::now());
        let result = self.refactor_in_place_inner(a);
        if let (Some(hist), Some(t0)) = (&self.numeric_hist, t0) {
            hist.observe(t0.elapsed().as_secs_f64());
        }
        result
    }

    fn refactor_in_place_inner(&mut self, a: &SparseMatrix) -> Result<(), SolveError> {
        let sym = &self.sym;
        assert_eq!(
            a.nnz(),
            sym.a_nnz,
            "matrix pattern differs from the analyzed one"
        );
        for i in 0..sym.n {
            let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
            // Scatter row perm[i] of A over the LU pattern.
            for k in lo..hi {
                self.work[sym.lu_col_idx[k]] = 0.0;
            }
            let abase = a.row_ptr[sym.perm[i]];
            for (t, q) in (sym.amap_ptr[i]..sym.amap_ptr[i + 1]).enumerate() {
                let v = a.values[abase + t] * sym.amap_scale[q];
                let dest = sym.amap_dest[q];
                if dest & 1 == 0 {
                    self.work[dest >> 1] = v;
                } else {
                    self.off_values[dest >> 1] = v;
                }
            }
            // Eliminate in-block columns j < i in ascending order.
            for k in lo..sym.diag_slot[i] {
                let j = sym.lu_col_idx[k];
                let ujj = self.lu_values[sym.diag_slot[j]];
                let l = self.work[j] / ujj;
                self.work[j] = l;
                if l != 0.0 {
                    for m in (sym.diag_slot[j] + 1)..sym.lu_row_ptr[j + 1] {
                        self.work[sym.lu_col_idx[m]] -= l * self.lu_values[m];
                    }
                }
            }
            // Gather the finished row, then check the pivot and the
            // multiplier growth: the gathered slots left of the diagonal
            // hold the row's L multipliers.
            for k in lo..hi {
                self.lu_values[k] = self.work[sym.lu_col_idx[k]];
            }
            let mut lmax = 0.0f64;
            for k in lo..sym.diag_slot[i] {
                lmax = lmax.max(self.lu_values[k].abs());
            }
            let piv = self.lu_values[sym.diag_slot[i]].abs();
            if piv <= PIVOT_EPS || !piv.is_finite() || lmax > PIVOT_GROWTH_LIMIT {
                return Err(SolveError::Singular { column: i });
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with the current factors: scaling and row
    /// permutation of `b`, then block-by-block forward/back substitution
    /// down the block triangle (each block first subtracts its couplings
    /// to the already-solved earlier blocks), then the column
    /// permutation and scaling back to the original variables.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `b.len()` does not
    /// match the dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let _span = rotsv_obs::span!("lu_solve");
        let sym = &self.sym;
        if b.len() != sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: sym.n,
                actual: b.len(),
            });
        }
        // Permute and row-scale the right-hand side.
        let mut z: Vec<f64> = sym.perm.iter().map(|&r| b[r] * sym.row_scale[r]).collect();
        for bidx in 0..sym.block_ptr.len() - 1 {
            let (bs, be) = (sym.block_ptr[bidx], sym.block_ptr[bidx + 1]);
            // Subtract the couplings to earlier (already solved) blocks.
            for i in bs..be {
                let mut acc = z[i];
                for k in sym.off_row_ptr[i]..sym.off_row_ptr[i + 1] {
                    acc -= self.off_values[k] * z[sym.off_col_idx[k]];
                }
                z[i] = acc;
            }
            // Forward substitution with unit-diagonal L.
            for i in bs..be {
                let mut acc = z[i];
                for k in sym.lu_row_ptr[i]..sym.diag_slot[i] {
                    acc -= self.lu_values[k] * z[sym.lu_col_idx[k]];
                }
                z[i] = acc;
            }
            // Back substitution with U.
            for i in (bs..be).rev() {
                let mut acc = z[i];
                for k in (sym.diag_slot[i] + 1)..sym.lu_row_ptr[i + 1] {
                    acc -= self.lu_values[k] * z[sym.lu_col_idx[k]];
                }
                z[i] = acc / self.lu_values[sym.diag_slot[i]];
            }
        }
        // Undo the column permutation and scaling.
        let mut x = vec![0.0; sym.n];
        for (j, &c) in sym.cperm.iter().enumerate() {
            x[c] = sym.col_scale[c] * z[j];
        }
        Ok(x)
    }
}
