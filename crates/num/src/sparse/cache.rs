//! The topology-keyed cache of symbolic analyses.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::linsolve::SolveError;

use super::numeric::SparseLu;
use super::symbolic::{AnalyzeOptions, SymbolicLu};
use super::SparseMatrix;

/// A process-scoped, topology-keyed cache of symbolic LU analyses.
///
/// Keyed by the exact CSR pattern `(n, row_ptr, col_idx)` *and* the
/// [`AnalyzeOptions`] of the analysis, so two matrices share an entry
/// iff they have the same topology and were analyzed the same way —
/// differently configured analyses (ordering, scaling) never mix. The
/// cache is deliberately *not* global: callers create one per
/// deterministic scope (e.g. one ΔT measurement, whose T1 and T2
/// transients share a netlist pattern) so that cache hits can never
/// depend on thread scheduling or leak between unrelated runs.
///
/// Sharing is numerically exact for the simulator's use: the first
/// factorization of every transient happens at the zero-voltage initial
/// Newton iterate, where the assembled matrix — and therefore the
/// permutations and scaling a fresh analysis would choose — is identical
/// for every run of the same netlist and die. A cache hit that
/// nevertheless fails the pivot check falls back to a fresh analysis
/// instead of poisoning the scope.
#[derive(Debug, Default)]
pub struct SymbolicCache {
    inner: Mutex<HashMap<PatternKey, Arc<SymbolicLu>>>,
}

#[derive(Debug, Hash, PartialEq, Eq)]
struct PatternKey {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    opts: AnalyzeOptions,
}

impl SymbolicCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (topology, options) analyses so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len()
    }

    /// `true` when no topology has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached symbolic analysis for `a`'s pattern under
    /// [`AnalyzeOptions::default`], computing and inserting it on first
    /// use. The `bool` is `true` when this call performed the analysis
    /// (callers count it in
    /// [`SolverStats::symbolic_analyses`](super::SolverStats::symbolic_analyses)).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a required fresh analysis
    /// finds no usable pivot. Failed analyses are not cached.
    pub fn symbolic_for(&self, a: &SparseMatrix) -> Result<(Arc<SymbolicLu>, bool), SolveError> {
        self.symbolic_for_with(a, AnalyzeOptions::default())
    }

    /// [`SymbolicCache::symbolic_for`] with explicit [`AnalyzeOptions`]
    /// (part of the cache key).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a required fresh analysis
    /// finds no usable pivot. Failed analyses are not cached.
    pub fn symbolic_for_with(
        &self,
        a: &SparseMatrix,
        opts: AnalyzeOptions,
    ) -> Result<(Arc<SymbolicLu>, bool), SolveError> {
        let key = PatternKey {
            n: a.dim(),
            row_ptr: a.row_ptr.clone(),
            col_idx: a.col_idx.clone(),
            opts,
        };
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(sym) = inner.get(&key) {
            return Ok((Arc::clone(sym), false));
        }
        let sym = Arc::new(SymbolicLu::analyze_with(a, opts)?);
        inner.insert(key, Arc::clone(&sym));
        Ok((sym, true))
    }

    /// Factors `a` under [`AnalyzeOptions::default`], reusing the cached
    /// symbolic analysis of its pattern when present. Returns the
    /// factorization and the number of fresh analyses this call performed
    /// (0 on a clean cache hit, 1 on a miss — or on a hit whose pivot
    /// order proved unusable for `a`'s values, where a private
    /// re-analysis takes over).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when even a fresh analysis
    /// cannot factor `a`.
    pub fn factor(&self, a: &SparseMatrix) -> Result<(SparseLu, u64), SolveError> {
        self.factor_with(a, AnalyzeOptions::default())
    }

    /// [`SymbolicCache::factor`] with explicit [`AnalyzeOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when even a fresh analysis
    /// cannot factor `a`.
    pub fn factor_with(
        &self,
        a: &SparseMatrix,
        opts: AnalyzeOptions,
    ) -> Result<(SparseLu, u64), SolveError> {
        let (sym, analyzed) = self.symbolic_for_with(a, opts)?;
        let analyses = u64::from(analyzed);
        match SparseLu::with_symbolic(sym, a) {
            Ok(lu) => Ok((lu, analyses)),
            Err(SolveError::Singular { .. }) => {
                // The shared pivot order does not suit these values; fall
                // back to a private analysis without touching the cache.
                Ok((SparseLu::new_with(a, opts)?, analyses + 1))
            }
            Err(e) => Err(e),
        }
    }
}
