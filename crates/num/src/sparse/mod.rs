//! Structure-aware sparse linear algebra for MNA systems.
//!
//! Modified-nodal-analysis matrices are extremely sparse: every circuit
//! element touches a handful of entries, so a ring-oscillator system with
//! `n` unknowns has O(n) nonzeros, not O(n²). Crucially, the *pattern* of
//! those nonzeros is fixed by the netlist topology — Newton iterations,
//! time steps and Monte-Carlo samples only change the *values*. This
//! module exploits that with a staged, KLU-style kernel:
//!
//! 1. **BTF decomposition** (`btf.rs`, Dulmage–Mendelsohn-style maximum
//!    matching + Tarjan SCC condensation) permutes the matrix to block
//!    lower triangular form, so each irreducible diagonal block factors
//!    independently and the off-diagonal blocks never fill in,
//! 2. **fill-reducing ordering** (`order.rs`, minimum degree with
//!    deterministic tie-breaking) reorders each diagonal block,
//! 3. **equilibration scaling** (`scale.rs`, optional, powers of two)
//!    tames badly-conditioned Jacobians without perturbing mantissas,
//! 4. **partial-pivot analysis** ([`SymbolicLu`], left-looking
//!    Gilbert–Peierls with threshold pivoting) fixes the pivot order and
//!    the exact fill pattern once per topology, after which
//!    [`SparseLu::refactor`] recomputes the numeric factors at
//!    O(nnz(LU)) per Newton iteration.
//!
//! [`BatchedLu`] runs `k` lane-interleaved value sets over one shared
//! analysis, and [`SymbolicCache`] shares analyses across the runs of a
//! deterministic scope. [`SolverStats`] threads work counters from the
//! linear solver up to the Monte-Carlo harness.
//!
//! See `SOLVER.md` at the repository root for the full architecture
//! (stage complexities, cache invalidation rules, fallback ladder) and
//! `PERFORMANCE.md` for the measured cost model.

mod batched;
mod btf;
mod cache;
mod numeric;
mod order;
mod scale;
mod stats;
mod symbolic;

pub use batched::BatchedLu;
pub use cache::SymbolicCache;
pub use numeric::SparseLu;
pub use scale::{Scaling, AUTO_SPREAD};
pub use stats::SolverStats;
pub use symbolic::{AnalyzeOptions, OrderingStrategy, SymbolicLu};

use crate::matrix::Matrix;

/// Pivots with magnitude below this are treated as numerically singular.
pub(crate) const PIVOT_EPS: f64 = 1e-300;

/// Refactorization declares pivot drift (and triggers a fresh analysis)
/// when an elimination multiplier exceeds this bound. Threshold pivoting
/// guarantees multipliers of at most `1 / PARTIAL_PIVOT_TAU` at analysis
/// time; a multiplier nine orders beyond that means the values have
/// drifted so far that the reused pivot order no longer bounds element
/// growth — and that a fresh analysis would pick a different pivot
/// (the oversized multiplier is itself a better candidate).
pub(crate) const PIVOT_GROWTH_LIMIT: f64 = 1e12;

/// A square sparse matrix in compressed sparse row (CSR) form.
///
/// Built once from the coordinate list of an assembly pass; afterwards
/// the pattern is frozen and values are updated in place through the
/// slot indices returned by [`SparseMatrix::from_coords`].
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::SparseMatrix;
///
/// // | 2 1 |   coordinate list in stamp order, duplicates accumulate
/// // | 1 3 |
/// let coords = [(0, 0), (0, 1), (1, 0), (1, 1), (0, 0)];
/// let (mut a, slots) = SparseMatrix::from_coords(2, &coords);
/// for (k, &v) in [1.0, 1.0, 1.0, 3.0, 1.0].iter().enumerate() {
///     a.add_slot(slots[k], v); // the two (0,0) stamps accumulate to 2
/// }
/// assert_eq!(a.get(0, 0), 2.0);
/// assert_eq!(a.nnz(), 4);
/// assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    pub(crate) n: usize,
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) col_idx: Vec<usize>,
    pub(crate) values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds the pattern of an `n × n` matrix from a coordinate list and
    /// returns, for every coordinate occurrence, the index of its value
    /// slot (duplicates map to the same slot and accumulate under
    /// [`SparseMatrix::add_slot`]).
    ///
    /// Values start at zero.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_coords(n: usize, coords: &[(usize, usize)]) -> (Self, Vec<usize>) {
        for &(i, j) in coords {
            assert!(
                i < n && j < n,
                "coordinate ({i}, {j}) out of range for n = {n}"
            );
        }
        // Count unique entries per row via sort-free bucketing.
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j) in coords {
            per_row[i].push(j);
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for cols in &mut per_row {
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len());
        }
        let values = vec![0.0; col_idx.len()];
        let m = Self {
            n,
            row_ptr,
            col_idx,
            values,
        };
        let slots = coords
            .iter()
            .map(|&(i, j)| m.slot_of(i, j).expect("coordinate was just inserted"))
            .collect();
        (m, slots)
    }

    /// Builds a matrix from explicit `(row, col, value)` triplets
    /// (duplicates accumulate). Convenience for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let coords: Vec<(usize, usize)> = triplets.iter().map(|&(i, j, _)| (i, j)).collect();
        let (mut m, slots) = Self::from_coords(n, &coords);
        for (k, &(_, _, v)) in triplets.iter().enumerate() {
            m.add_slot(slots[k], v);
        }
        m
    }

    /// Dimension of the (square) matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Resets every stored value to zero, keeping the pattern.
    pub fn zero_values(&mut self) {
        self.values.fill(0.0);
    }

    /// Adds `v` into value slot `slot` (an index from
    /// [`SparseMatrix::from_coords`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn add_slot(&mut self, slot: usize, v: f64) {
        self.values[slot] += v;
    }

    /// The stored values in slot order (parallel to the CSR pattern).
    ///
    /// Callers can snapshot and compare this to detect that a matrix has
    /// not changed since it was last factored.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value slot storing entry `(i, j)`, if the pattern contains it.
    pub fn slot_of(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .binary_search(&j)
            .ok()
            .map(|off| lo + off)
    }

    /// The value at `(i, j)`; zero when outside the pattern.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.slot_of(i, j).map_or(0.0, |s| self.values[s])
    }

    /// Sparse matrix–vector product `y = A·x` into a caller buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length does not match the dimension.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        assert_eq!(y.len(), self.n, "output length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Sparse matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the dimension.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Lane-batched sparse matrix–vector product over `k` lanes sharing
    /// this matrix's sparsity pattern.
    ///
    /// `values` holds the nonzeros lane-interleaved (`values[s*k + lane]`
    /// is slot `s` of lane `lane`), as does `x` per row and `y` on
    /// output. The lane loop is innermost and branch-free so it
    /// autovectorizes; this is the residual kernel of the batched
    /// Newton solver.
    ///
    /// # Panics
    ///
    /// Panics if `values`, `x` or `y` lengths do not match
    /// `nnz()*k` / `n*k` / `n*k`.
    pub fn mul_vec_lanes_into(&self, values: &[f64], k: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            values.len(),
            self.values.len() * k,
            "values length mismatch"
        );
        assert_eq!(x.len(), self.n * k, "vector length mismatch");
        assert_eq!(y.len(), self.n * k, "output length mismatch");
        match k {
            1 => self.mul_vec_lanes_k::<1>(values, x, y),
            2 => self.mul_vec_lanes_k::<2>(values, x, y),
            3 => self.mul_vec_lanes_k::<3>(values, x, y),
            4 => self.mul_vec_lanes_k::<4>(values, x, y),
            5 => self.mul_vec_lanes_k::<5>(values, x, y),
            6 => self.mul_vec_lanes_k::<6>(values, x, y),
            7 => self.mul_vec_lanes_k::<7>(values, x, y),
            8 => self.mul_vec_lanes_k::<8>(values, x, y),
            16 => self.mul_vec_lanes_k::<16>(values, x, y),
            32 => self.mul_vec_lanes_k::<32>(values, x, y),
            64 => self.mul_vec_lanes_k::<64>(values, x, y),
            _ => self.mul_vec_lanes_dyn(values, k, x, y),
        }
    }

    /// Monomorphized body of [`SparseMatrix::mul_vec_lanes_into`],
    /// dispatched to the widest SIMD arm `K` is a multiple of: the
    /// per-row accumulator lives in vector registers.
    fn mul_vec_lanes_k<const K: usize>(&self, values: &[f64], x: &[f64], y: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        {
            use crate::simd::{self, Level};
            let level = simd::level();
            if K.is_multiple_of(8) && level == Level::Avx512 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.mul_vec_lanes_avx512::<K>(values, x, y) };
            }
            if K.is_multiple_of(4) && level >= Level::Avx2 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.mul_vec_lanes_avx2::<K>(values, x, y) };
            }
        }
        // SAFETY: the scalar arm has no ISA requirements.
        unsafe { self.mul_vec_lanes_body::<K, crate::simd::ScalarLanes>(values, x, y) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    fn mul_vec_lanes_avx512<const K: usize>(&self, values: &[f64], x: &[f64], y: &mut [f64]) {
        // SAFETY: caller verified avx512f; we are in a matching region.
        unsafe { self.mul_vec_lanes_body::<K, crate::simd::Avx512Lanes>(values, x, y) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn mul_vec_lanes_avx2<const K: usize>(&self, values: &[f64], x: &[f64], y: &mut [f64]) {
        // SAFETY: caller verified avx2; we are in a matching region.
        unsafe { self.mul_vec_lanes_body::<K, crate::simd::Avx2Lanes>(values, x, y) }
    }

    /// The SpMV kernel: `K` lanes in `K / S::W` vector chunks, per-lane
    /// accumulation order identical to the dynamic fallback (ascending
    /// slots), so results are bit-identical across arms.
    ///
    /// # Safety
    ///
    /// `S`'s ISA must be available and enabled in the enclosing region;
    /// `K` must be a multiple of `S::W` and match the interleave factor
    /// of `values`/`x`/`y` (checked by the public entry point).
    #[inline(always)]
    unsafe fn mul_vec_lanes_body<const K: usize, S: crate::simd::Simd>(
        &self,
        values: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        debug_assert_eq!(K % S::W, 0);
        let vp = values.as_ptr();
        let xpt = x.as_ptr();
        let yp = y.as_mut_ptr();
        // SAFETY (whole body): slot/row indices are bounds the public
        // entry point asserted; chunks stay inside each lane group.
        unsafe {
            for i in 0..self.n {
                for c in (0..K).step_by(S::W) {
                    let mut acc = S::splat(0.0);
                    for s in self.row_ptr[i]..self.row_ptr[i + 1] {
                        let col = self.col_idx[s];
                        acc = S::add(
                            acc,
                            S::mul(S::ld(vp.add(s * K + c)), S::ld(xpt.add(col * K + c))),
                        );
                    }
                    S::st(yp.add(i * K + c), acc);
                }
            }
        }
    }

    /// Fallback for lane counts without a monomorphized kernel.
    fn mul_vec_lanes_dyn(&self, values: &[f64], k: usize, x: &[f64], y: &mut [f64]) {
        for i in 0..self.n {
            let yi = &mut y[i * k..(i + 1) * k];
            yi.fill(0.0);
            for s in self.row_ptr[i]..self.row_ptr[i + 1] {
                let col = self.col_idx[s];
                let vs = &values[s * k..(s + 1) * k];
                let xs = &x[col * k..(col + 1) * k];
                for lane in 0..k {
                    yi[lane] += vs[lane] * xs[lane];
                }
            }
        }
    }

    /// Densifies into a [`Matrix`] (for tests and reference solves).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Row `i` as parallel `(col_idx, values)` slices (test helper).
    #[cfg(test)]
    pub(crate) fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
}

#[cfg(test)]
mod tests;
