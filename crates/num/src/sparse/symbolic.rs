//! Stage 4 of the symbolic pipeline: the left-looking Gilbert–Peierls
//! analysis that fixes pivot order and fill pattern.
//!
//! [`SymbolicLu::analyze_with`] chains the stages: equilibration
//! ([`super::scale`]) → BTF permutation ([`super::btf`]) → per-block
//! minimum-degree ([`super::order`]) → per-block Gilbert–Peierls
//! factorization with threshold partial pivoting. The last stage is
//! numeric (it factors the probe values it is given, preferring the
//! matched diagonal unless a competitor is ≥ 1000× larger), but its
//! *output* is purely structural: a row permutation and the exact fill
//! pattern of `L + U`, which every subsequent
//! [`SparseLu::refactor`](super::SparseLu::refactor) reuses at
//! O(nnz(LU)) cost.

use crate::linsolve::SolveError;

use super::{btf, order, scale, Scaling, SparseMatrix, PIVOT_EPS};

/// Threshold for partial pivoting inside the analysis: the matched
/// diagonal keeps the pivot unless some other candidate in its column is
/// more than `1 / PARTIAL_PIVOT_TAU` times larger. Diagonal preference
/// keeps the BTF structure intact and the fill pattern close to the
/// minimum-degree prediction; the threshold still bounds element growth.
const PARTIAL_PIVOT_TAU: f64 = 1e-3;

/// Attributes the wall time of the analysis stages to the `lu.scale` /
/// `lu.btf` / `lu.order` / `lu.symbolic` histograms, so a re-analysis
/// storm is diagnosable per stage. Inert (no clock reads) when metrics
/// are disabled; analysis is a cold path, so the per-lap registry
/// lookup is acceptable.
struct StageTimer {
    last: Option<std::time::Instant>,
}

impl StageTimer {
    fn start() -> StageTimer {
        StageTimer {
            last: rotsv_obs::metrics_enabled().then(std::time::Instant::now),
        }
    }

    /// Records the time since the previous lap (or start) under `hist`.
    fn lap(&mut self, hist: &str) {
        if let Some(last) = self.last.as_mut() {
            let now = std::time::Instant::now();
            rotsv_obs::metrics::observe(hist, (now - *last).as_secs_f64());
            *last = now;
        }
    }
}

/// How the symbolic analysis permutes the system before factoring.
///
/// Part of [`AnalyzeOptions`]; the [`SymbolicCache`](super::SymbolicCache)
/// keys on it, so analyses made under different strategies never mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingStrategy {
    /// The full staged pipeline: block-triangular decomposition, then a
    /// minimum-degree fill-reducing ordering inside each diagonal block.
    /// The default, and the only mode that scales past a few hundred
    /// unknowns.
    #[default]
    BtfMinDegree,
    /// Keep the natural (stamp) order: one block, no reordering. Pivoting
    /// still runs, so the factorization stays correct — this mode exists
    /// as a fallback and as the baseline the benches compare against.
    Natural,
}

/// Options controlling a symbolic analysis.
///
/// The defaults (BTF + minimum degree, automatic scaling) are right for
/// MNA systems; [`SymbolicCache`](super::SymbolicCache) keys include the
/// options so differently-configured analyses coexist.
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::{AnalyzeOptions, OrderingStrategy, Scaling};
///
/// let opts = AnalyzeOptions::default();
/// assert_eq!(opts.ordering, OrderingStrategy::BtfMinDegree);
/// assert_eq!(opts.scaling, Scaling::Auto);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AnalyzeOptions {
    /// Permutation strategy (BTF + minimum degree, or natural order).
    pub ordering: OrderingStrategy,
    /// Row/column equilibration policy.
    pub scaling: Scaling,
}

/// The value-independent part of a sparse LU factorization: permutations,
/// block structure, scaling factors and fill-in pattern.
///
/// The pattern of an MNA matrix is fixed by the netlist topology, so one
/// analysis can be shared — behind an [`Arc`](std::sync::Arc) — by every
/// factorization of that topology: the T1/T2 runs of one ΔT measurement,
/// and all lanes of a [`BatchedLu`](super::BatchedLu). Produced by
/// [`SymbolicLu::analyze`]; consumed by
/// [`SparseLu::with_symbolic`](super::SparseLu::with_symbolic) and
/// [`BatchedLu::new`](super::BatchedLu::new).
///
/// Internally the analysis stores the system in *doubly permuted, scaled*
/// form `P · S_r · A · S_c · Q`: `P`/`Q` are the row/column permutations
/// chosen by BTF + minimum degree + pivoting, `S_r`/`S_c` the optional
/// equilibration factors. The permuted matrix is block lower triangular;
/// only the diagonal blocks carry `L + U` fill, while entries below the
/// blocks are stored verbatim and handled by substitution.
#[derive(Debug)]
pub struct SymbolicLu {
    pub(super) n: usize,
    pub(super) opts: AnalyzeOptions,
    /// Entry count of the analyzed pattern (refactor sanity check).
    pub(super) a_nnz: usize,
    /// Row permutation: position `i` of the permuted system holds
    /// original row `perm[i]`.
    pub(super) perm: Vec<usize>,
    /// Column permutation: position `j` holds original column `cperm[j]`.
    pub(super) cperm: Vec<usize>,
    /// Diagonal-block boundaries in permuted index space.
    pub(super) block_ptr: Vec<usize>,
    /// Equilibration factors (all ones when `scaled` is false), indexed
    /// by *original* row/column.
    pub(super) row_scale: Vec<f64>,
    pub(super) col_scale: Vec<f64>,
    pub(super) scaled: bool,
    /// CSR pattern of the block-diagonal `L + U` (unit-diagonal `L`
    /// strictly below, `U` on and above the diagonal): rows in permuted
    /// order, columns as sorted permuted positions within the row's block.
    pub(super) lu_row_ptr: Vec<usize>,
    pub(super) lu_col_idx: Vec<usize>,
    /// Slot of the diagonal entry in each LU row.
    pub(super) diag_slot: Vec<usize>,
    /// Below-block entries per permuted row (columns of earlier blocks,
    /// as permuted positions). These never fill in or eliminate; numeric
    /// stages store their scaled values verbatim.
    pub(super) off_row_ptr: Vec<usize>,
    pub(super) off_col_idx: Vec<usize>,
    /// Scatter map: entries `amap_ptr[i]..amap_ptr[i+1]` parallel the CSR
    /// slots of original row `perm[i]`. `amap_dest` is tagged
    /// `(work_position << 1)` for in-block entries and
    /// `(off_slot << 1) | 1` for below-block entries; `amap_scale` is the
    /// combined row × column equilibration factor of the slot.
    pub(super) amap_ptr: Vec<usize>,
    pub(super) amap_dest: Vec<usize>,
    pub(super) amap_scale: Vec<f64>,
}

impl SymbolicLu {
    /// Analyzes `a` under [`AnalyzeOptions::default`]: scaling decision,
    /// BTF decomposition, per-block minimum-degree ordering, and a
    /// threshold-pivoting Gilbert–Peierls factorization of the current
    /// values that fixes the pivot order and the fill pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when the pattern is structurally
    /// singular or no usable pivot exists for the current values.
    pub fn analyze(a: &SparseMatrix) -> Result<Self, SolveError> {
        Self::analyze_with(a, AnalyzeOptions::default())
    }

    /// [`SymbolicLu::analyze`] with explicit [`AnalyzeOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when the pattern is structurally
    /// singular or no usable pivot exists for the current values.
    pub fn analyze_with(a: &SparseMatrix, opts: AnalyzeOptions) -> Result<Self, SolveError> {
        let n = a.dim();
        let _span = rotsv_obs::span!("lu_analyze", "n" = n);
        let mut stages = StageTimer::start();
        // Stage 1: equilibration (exact powers of two; see scale.rs).
        let (row_scale, col_scale, scaled) = scale::equilibrate(a, opts.scaling);
        stages.lap("lu.scale");
        // Stage 2: block triangular form. The matching runs on the full
        // structural pattern (explicit zeros included) so the analysis
        // stays valid for every value set stamped over this topology.
        let form = match opts.ordering {
            OrderingStrategy::BtfMinDegree => btf::decompose(n, &a.row_ptr, &a.col_idx)
                .map_err(|column| SolveError::Singular { column })?,
            OrderingStrategy::Natural => btf::natural(n),
        };
        let btf::BtfForm {
            mut rperm,
            mut cperm,
            block_ptr,
        } = form;
        stages.lap("lu.btf");
        // Stage 3: fill-reducing ordering inside each diagonal block.
        if matches!(opts.ordering, OrderingStrategy::BtfMinDegree) {
            order::refine_blocks(
                n, &a.row_ptr, &a.col_idx, &mut rperm, &mut cperm, &block_ptr,
            );
        }
        stages.lap("lu.order");
        let mut cinv = vec![0usize; n];
        for (p, &c) in cperm.iter().enumerate() {
            cinv[c] = p;
        }
        // Stage 4: per-block Gilbert–Peierls with threshold partial
        // pivoting. Finalizes the row order inside each block and records
        // the exact structural fill of `L + U`.
        let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for b in 0..block_ptr.len() - 1 {
            factor_block(
                a,
                &mut rperm,
                &cinv,
                block_ptr[b],
                block_ptr[b + 1],
                &row_scale,
                &col_scale,
                &mut row_cols,
            )?;
        }

        // Assemble the global row-major CSR of the block-diagonal L + U.
        let mut lu_row_ptr = Vec::with_capacity(n + 1);
        let mut lu_col_idx = Vec::new();
        let mut diag_slot = Vec::with_capacity(n);
        lu_row_ptr.push(0);
        for (i, cols) in row_cols.iter_mut().enumerate() {
            cols.sort_unstable();
            let base = lu_col_idx.len();
            lu_col_idx.extend_from_slice(cols);
            let d = cols
                .binary_search(&i)
                .expect("the pivot diagonal is always in the pattern");
            diag_slot.push(base + d);
            lu_row_ptr.push(lu_col_idx.len());
        }

        // Off-block pattern and the scatter map that routes each A slot
        // of a permuted row to its in-block work position or off slot.
        let mut block_start = vec![0usize; n];
        let mut block_end = vec![0usize; n];
        for b in 0..block_ptr.len() - 1 {
            for p in block_ptr[b]..block_ptr[b + 1] {
                block_start[p] = block_ptr[b];
                block_end[p] = block_ptr[b + 1];
            }
        }
        let mut off_row_ptr = Vec::with_capacity(n + 1);
        let mut off_col_idx = Vec::new();
        let mut amap_ptr = Vec::with_capacity(n + 1);
        let mut amap_dest = Vec::with_capacity(a.nnz());
        let mut amap_scale = Vec::with_capacity(a.nnz());
        off_row_ptr.push(0);
        amap_ptr.push(0);
        for i in 0..n {
            let r = rperm[i];
            for s in a.row_ptr[r]..a.row_ptr[r + 1] {
                let c = a.col_idx[s];
                let q = cinv[c];
                debug_assert!(q < block_end[i], "entry above the block diagonal");
                if q >= block_start[i] {
                    amap_dest.push(q << 1);
                } else {
                    amap_dest.push((off_col_idx.len() << 1) | 1);
                    off_col_idx.push(q);
                }
                amap_scale.push(row_scale[r] * col_scale[c]);
            }
            off_row_ptr.push(off_col_idx.len());
            amap_ptr.push(amap_dest.len());
        }
        // Stage 4 (pivoting sweep, fill recording, scatter-map
        // assembly) attributes as one bucket: it shares data and can't
        // be re-run in isolation.
        stages.lap("lu.symbolic");

        Ok(Self {
            n,
            opts,
            a_nnz: a.nnz(),
            perm: rperm,
            cperm,
            block_ptr,
            row_scale,
            col_scale,
            scaled,
            lu_row_ptr,
            lu_col_idx,
            diag_slot,
            off_row_ptr,
            off_col_idx,
            amap_ptr,
            amap_dest,
            amap_scale,
        })
    }

    /// Dimension of the analyzed system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries across the factors: the block-diagonal
    /// `L + U` pattern plus the unfactored below-block entries. Always at
    /// least `nnz(A)` — the excess is the fill-in.
    pub fn lu_nnz(&self) -> usize {
        self.lu_col_idx.len() + self.off_col_idx.len()
    }

    /// Number of irreducible diagonal blocks found by the BTF stage
    /// (1 under [`OrderingStrategy::Natural`]).
    pub fn block_count(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Dimension of the largest diagonal block — the only part of the
    /// system that pays elimination cost.
    pub fn max_block_dim(&self) -> usize {
        self.block_ptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// `true` when equilibration scaling is active in this analysis.
    pub fn is_scaled(&self) -> bool {
        self.scaled
    }

    /// The options this analysis was made under.
    pub fn options(&self) -> AnalyzeOptions {
        self.opts
    }
}

/// Gilbert–Peierls left-looking factorization of one diagonal block
/// (permuted positions `s0..s1`), with threshold partial pivoting that
/// prefers the matched diagonal. Rewrites `rperm[s0..s1]` into the final
/// pivot order and appends each row's within-block `L + U` columns to
/// `row_cols` (as global permuted positions).
#[allow(clippy::too_many_arguments)]
fn factor_block(
    a: &SparseMatrix,
    rperm: &mut [usize],
    cinv: &[usize],
    s0: usize,
    s1: usize,
    row_scale: &[f64],
    col_scale: &[f64],
    row_cols: &mut [Vec<usize>],
) -> Result<(), SolveError> {
    const UNSET: usize = usize::MAX;
    let m = s1 - s0;
    if m == 0 {
        return Ok(());
    }
    // The block in local column-major form, values scaled.
    let mut col_ptr = vec![0usize; m + 1];
    for p in 0..m {
        let r = rperm[s0 + p];
        for &c in &a.col_idx[a.row_ptr[r]..a.row_ptr[r + 1]] {
            let q = cinv[c];
            if q >= s0 && q < s1 {
                col_ptr[q - s0 + 1] += 1;
            }
        }
    }
    for j in 0..m {
        col_ptr[j + 1] += col_ptr[j];
    }
    let mut col_rows = vec![0usize; col_ptr[m]];
    let mut col_vals = vec![0.0f64; col_ptr[m]];
    let mut fill = col_ptr.clone();
    for p in 0..m {
        let r = rperm[s0 + p];
        for s in a.row_ptr[r]..a.row_ptr[r + 1] {
            let c = a.col_idx[s];
            let q = cinv[c];
            if q >= s0 && q < s1 {
                let j = q - s0;
                col_rows[fill[j]] = p;
                col_vals[fill[j]] = a.values[s] * row_scale[r] * col_scale[c];
                fill[j] += 1;
            }
        }
    }

    // Left-looking elimination. `L` columns are stored by pivot position
    // (local rows as node ids); `x` is the dense accumulator, cleared
    // per column over the reached set only.
    let mut pinv = vec![UNSET; m]; // local row -> pivot position
    let mut lcol_ptr = vec![0usize; m + 1];
    let mut lcol_rows: Vec<usize> = Vec::new();
    let mut lcol_vals: Vec<f64> = Vec::new();
    let mut x = vec![0.0f64; m];
    let mut marked = vec![false; m];
    let mut topo: Vec<usize> = Vec::with_capacity(m);
    let mut dfs: Vec<(usize, usize)> = Vec::new();
    // Deferred L-pattern entries (local row, local col): the row's final
    // position is only known once the whole block is pivoted.
    let mut lpat: Vec<(usize, usize)> = Vec::new();

    for j in 0..m {
        // Symbolic: the reach of A(:, j) through the finished L columns.
        // Iterative DFS; `topo` collects the postorder, whose reverse is
        // a topological order of the update dependencies.
        topo.clear();
        let l_start = |r: usize, pinv: &[usize], lcol_ptr: &[usize]| {
            if pinv[r] == UNSET {
                (0, 0)
            } else {
                (lcol_ptr[pinv[r]], lcol_ptr[pinv[r] + 1])
            }
        };
        for &r0 in &col_rows[col_ptr[j]..col_ptr[j + 1]] {
            if marked[r0] {
                continue;
            }
            marked[r0] = true;
            let (start, _) = l_start(r0, &pinv, &lcol_ptr);
            dfs.push((r0, start));
            while let Some(&mut (r, ref mut pos)) = dfs.last_mut() {
                let (_, end) = l_start(r, &pinv, &lcol_ptr);
                let mut descended = false;
                while *pos < end {
                    let child = lcol_rows[*pos];
                    *pos += 1;
                    if !marked[child] {
                        marked[child] = true;
                        let (cs, _) = l_start(child, &pinv, &lcol_ptr);
                        dfs.push((child, cs));
                        descended = true;
                        break;
                    }
                }
                if !descended {
                    topo.push(r);
                    dfs.pop();
                }
            }
        }
        // Numeric: scatter the column, apply the reached L columns in
        // topological order.
        for &r in &topo {
            x[r] = 0.0;
        }
        for s in col_ptr[j]..col_ptr[j + 1] {
            x[col_rows[s]] = col_vals[s];
        }
        for &r in topo.iter().rev() {
            if pinv[r] == UNSET {
                continue;
            }
            let xr = x[r];
            if xr != 0.0 {
                for s in lcol_ptr[pinv[r]]..lcol_ptr[pinv[r] + 1] {
                    x[lcol_rows[s]] -= xr * lcol_vals[s];
                }
            }
        }
        // Threshold partial pivoting with diagonal preference: keep the
        // matched/min-degree diagonal row unless a competitor is more
        // than 1/tau times larger.
        let mut best = UNSET;
        let mut best_abs = -1.0f64;
        for &r in &topo {
            if pinv[r] == UNSET {
                let v = x[r].abs();
                if best == UNSET || v > best_abs {
                    best = r;
                    best_abs = v;
                }
            }
        }
        if best == UNSET {
            for &r in &topo {
                marked[r] = false;
            }
            return Err(SolveError::Singular { column: s0 + j });
        }
        let piv = if pinv[j] == UNSET
            && marked[j]
            && x[j].abs() > PIVOT_EPS
            && x[j].abs() >= PARTIAL_PIVOT_TAU * best_abs
        {
            j
        } else {
            best
        };
        let pv = x[piv];
        if pv.abs() <= PIVOT_EPS || !pv.is_finite() {
            for &r in &topo {
                marked[r] = false;
            }
            return Err(SolveError::Singular { column: s0 + j });
        }
        pinv[piv] = j;
        // Record the patterns: the pivot's diagonal, U entries at already
        // assigned rows (their pivot position is final), L entries at the
        // still-unassigned rows (deferred until the block is done).
        row_cols[s0 + j].push(s0 + j);
        for &r in &topo {
            marked[r] = false;
            if r == piv {
                continue;
            }
            if pinv[r] == UNSET {
                lpat.push((r, j));
                lcol_rows.push(r);
                lcol_vals.push(x[r] / pv);
            } else {
                row_cols[s0 + pinv[r]].push(s0 + j);
            }
        }
        lcol_ptr[j + 1] = lcol_rows.len();
    }

    // Final pivot order of the block, then resolve the deferred L rows.
    let old: Vec<usize> = rperm[s0..s1].to_vec();
    for p in 0..m {
        rperm[s0 + pinv[p]] = old[p];
    }
    for &(r, j) in &lpat {
        row_cols[s0 + pinv[r]].push(s0 + j);
    }
    Ok(())
}
