//! Work counters threaded from the linear solver up to the harness.

/// Counters describing the numerical work of a simulation.
///
/// Produced by the linear solver and the Newton/transient loops in
/// `rotsv-spice`, aggregated per measurement and per Monte-Carlo
/// population in `rotsv`, and printed by the `experiments` binary.
///
/// Equality is not derived: `wall_seconds` varies run to run, so
/// containers holding stats implement equality over their data only.
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::SolverStats;
///
/// let mut total = SolverStats::default();
/// let step = SolverStats {
///     factorizations: 1,
///     solves: 3,
///     newton_iterations: 3,
///     steps_accepted: 1,
///     ..SolverStats::default()
/// };
/// total.merge(&step);
/// total.merge(&step);
/// assert_eq!(total.solves, 6);
/// assert!(total.summary().contains("newton 6"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Full symbolic + pivot analyses (one per topology, plus pivot-drift
    /// fallbacks).
    pub symbolic_analyses: u64,
    /// Numeric factorizations, including the fast refactorizations.
    pub factorizations: u64,
    /// Triangular solves.
    pub solves: u64,
    /// Newton iterations across all analyses.
    pub newton_iterations: u64,
    /// Accepted integration steps.
    pub steps_accepted: u64,
    /// Rejected integration steps (local-truncation-error control or
    /// Newton failure).
    pub steps_rejected: u64,
    /// Wall-clock time spent inside analyses, seconds.
    pub wall_seconds: f64,
}

impl SolverStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SolverStats) {
        self.symbolic_analyses += other.symbolic_analyses;
        self.factorizations += other.factorizations;
        self.solves += other.solves;
        self.newton_iterations += other.newton_iterations;
        self.steps_accepted += other.steps_accepted;
        self.steps_rejected += other.steps_rejected;
        self.wall_seconds += other.wall_seconds;
    }

    /// Renders the counters as a JSON object (for run manifests and
    /// `--json` experiment output).
    pub fn to_json(&self) -> rotsv_obs::Json {
        use rotsv_obs::Json;
        Json::Obj(vec![
            (
                "symbolic_analyses".into(),
                Json::Num(self.symbolic_analyses as f64),
            ),
            (
                "factorizations".into(),
                Json::Num(self.factorizations as f64),
            ),
            ("solves".into(), Json::Num(self.solves as f64)),
            (
                "newton_iterations".into(),
                Json::Num(self.newton_iterations as f64),
            ),
            (
                "steps_accepted".into(),
                Json::Num(self.steps_accepted as f64),
            ),
            (
                "steps_rejected".into(),
                Json::Num(self.steps_rejected as f64),
            ),
            ("wall_seconds".into(), Json::num_or_null(self.wall_seconds)),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "steps {}+{}r, newton {}, factor {} ({} analyses), solves {}, wall {:.3} s",
            self.steps_accepted,
            self.steps_rejected,
            self.newton_iterations,
            self.factorizations,
            self.symbolic_analyses,
            self.solves,
            self.wall_seconds,
        )
    }
}
