//! Stage 2 of the symbolic pipeline: a fill-reducing ordering for each
//! irreducible diagonal block.
//!
//! Classic minimum-degree on the symmetrized block pattern `B + Bᵀ`:
//! repeatedly eliminate the node of smallest degree in the elimination
//! graph, connecting its neighbours into a clique. Ties break toward the
//! smallest node index, so the ordering is a pure function of the
//! pattern — a requirement for the topology-keyed symbolic cache, whose
//! hits must be bit-neutral with a fresh analysis.
//!
//! The ordering is applied *symmetrically* (rows and columns move
//! together), which preserves the BTF matching: position `p` of the
//! reordered block still pairs a matched row/column, so the diagonal
//! stays structurally nonzero for the pivoting stage.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reorders every block of `block_ptr` (in permuted index space) by
/// minimum degree, updating `rperm` and `cperm` in place. Blocks of
/// fewer than three nodes have nothing to reorder and are skipped.
pub(super) fn refine_blocks(
    n: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    rperm: &mut [usize],
    cperm: &mut [usize],
    block_ptr: &[usize],
) {
    let mut cinv = vec![usize::MAX; n];
    for (p, &c) in cperm.iter().enumerate() {
        cinv[c] = p;
    }
    for b in 0..block_ptr.len() - 1 {
        let (s0, s1) = (block_ptr[b], block_ptr[b + 1]);
        let m = s1 - s0;
        if m < 3 {
            continue;
        }
        // Symmetrized local adjacency of the block (no self loops).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        for p in 0..m {
            let r = rperm[s0 + p];
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                let q = cinv[c];
                if q >= s0 && q < s1 && q - s0 != p {
                    adj[p].push(q - s0);
                    adj[q - s0].push(p);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        let local = min_degree(m, adj);
        // Apply symmetrically; `local[t]` is the old local position that
        // moves to new local position `t`.
        let old_r: Vec<usize> = rperm[s0..s1].to_vec();
        let old_c: Vec<usize> = cperm[s0..s1].to_vec();
        for (t, &p) in local.iter().enumerate() {
            rperm[s0 + t] = old_r[p];
            cperm[s0 + t] = old_c[p];
        }
        for (q, &c) in cperm[s0..s1].iter().enumerate() {
            cinv[c] = s0 + q;
        }
    }
}

/// Minimum-degree elimination order of an undirected graph given as
/// sorted adjacency lists. Returns `order` with `order[t]` = the node
/// eliminated at step `t`.
fn min_degree(m: usize, mut adj: Vec<Vec<usize>>) -> Vec<usize> {
    let mut alive = vec![true; m];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    // Lazy heap of (degree, node); stale entries are skipped when their
    // recorded degree no longer matches.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(m);
    for (v, &d) in degree.iter().enumerate() {
        heap.push(Reverse((d, v)));
    }
    let mut order = Vec::with_capacity(m);
    let mut mark = vec![false; m];
    let mut merged: Vec<usize> = Vec::new();
    while order.len() < m {
        let v = loop {
            let Reverse((d, v)) = heap
                .pop()
                .expect("heap exhausted before elimination finished");
            if alive[v] && degree[v] == d {
                break v;
            }
        };
        alive[v] = false;
        order.push(v);
        // Eliminate v: its surviving neighbours become a clique.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| alive[u]).collect();
        for &u in &nbrs {
            // adj[u] := (adj[u] ∪ nbrs) \ {u, v}, alive nodes only.
            merged.clear();
            for &w in &adj[u] {
                if alive[w] && w != v && !mark[w] {
                    mark[w] = true;
                    merged.push(w);
                }
            }
            for &w in &nbrs {
                if w != u && !mark[w] {
                    mark[w] = true;
                    merged.push(w);
                }
            }
            merged.sort_unstable();
            for &w in &merged {
                mark[w] = false;
            }
            adj[u].clear();
            adj[u].extend_from_slice(&merged);
            degree[u] = adj[u].len();
            heap.push(Reverse((degree[u], u)));
        }
        adj[v] = Vec::new();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_graph_eliminates_leaves_first() {
        // Star: node 0 is the hub (degree 4), leaves have degree 1. Min
        // degree must not start with the hub; once most leaves are gone
        // the hub's degree drops to 1 and it ties with the last leaf
        // (either elimination order is fill-free).
        let m = 5;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        for leaf in 1..m {
            adj[0].push(leaf);
            adj[leaf].push(0);
        }
        adj[0].sort_unstable();
        let order = min_degree(m, adj);
        assert_eq!(&order[..m - 2], &[1, 2, 3], "leaves go first, by index");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn path_graph_order_is_deterministic() {
        // 0 - 1 - 2 - 3: endpoints have degree 1 and go first.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let a = min_degree(4, adj.clone());
        let b = min_degree(4, adj);
        assert_eq!(a, b);
        assert_eq!(a[0], 0);
    }

    #[test]
    fn orders_every_node_exactly_once() {
        // Dense triangle plus a pendant.
        let adj = vec![vec![1, 2], vec![0, 2, 3], vec![0, 1], vec![1]];
        let mut order = min_degree(4, adj);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
