//! Lane-batched numeric stage: `k` value sets factored and solved in
//! lockstep over one shared symbolic analysis.

use std::sync::Arc;

use crate::linsolve::SolveError;
use crate::simd::{self, ScalarLanes, Simd};

use super::symbolic::SymbolicLu;
use super::{SparseMatrix, PIVOT_EPS, PIVOT_GROWTH_LIMIT};

/// A lane-batched sparse LU: one shared symbolic analysis, `k`
/// lane-interleaved value sets factored and solved in lockstep.
///
/// Storage is lane-interleaved (`values[slot * k + lane]`) so the
/// per-slot elimination and substitution loops run over contiguous
/// lanes and autovectorize. All lanes share the permutations, scaling
/// and pivot order of the analysis; when one lane's values make that
/// order unusable, the batch transparently re-analyzes from the
/// offending lane — under the same [`AnalyzeOptions`](super::AnalyzeOptions),
/// valid for every lane because the pattern is shared — and reports the
/// number of analyses spent.
///
/// # Examples
///
/// ```
/// use rotsv_num::sparse::{BatchedLu, SparseMatrix, SymbolicLu};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
/// let a = SparseMatrix::from_triplets(2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 1, 2.0)]);
/// let sym = Arc::new(SymbolicLu::analyze(&a)?);
/// let mut lu = BatchedLu::new(sym, 2);
/// // Lane-interleaved values for two lanes: lane 0 = a, lane 1 = 2a.
/// let vals: Vec<f64> = a.values().iter().flat_map(|&v| [v, 2.0 * v]).collect();
/// lu.refactor(&a, &vals)?;
/// let mut b = vec![5.0, 10.0, 2.0, 4.0]; // rhs per lane, interleaved
/// lu.solve_in_place(&mut b);
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// assert!((b[2] - 1.0).abs() < 1e-12 && (b[3] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchedLu {
    sym: Arc<SymbolicLu>,
    k: usize,
    /// Block-diagonal `L + U` values, lane-interleaved.
    lu_values: Vec<f64>,
    /// Scaled below-block values, lane-interleaved.
    off_values: Vec<f64>,
    /// `n * k` dense scatter workspace.
    work: Vec<f64>,
    /// `k` multiplier scratch for the elimination inner loop.
    lrow: Vec<f64>,
    /// `n * k` scratch for the permuted solve.
    xbuf: Vec<f64>,
    /// `lu.numeric` timing handle, resolved once at construction;
    /// `None` when metrics were disabled then (the sweep paths pay one
    /// `Option` check).
    numeric_hist: Option<Arc<rotsv_obs::Histogram>>,
}

impl BatchedLu {
    /// Creates a batched factorization of `k` lanes over a shared
    /// symbolic analysis. Values are supplied per [`BatchedLu::refactor`].
    pub fn new(sym: Arc<SymbolicLu>, k: usize) -> Self {
        assert!(k > 0, "a batch needs at least one lane");
        Self {
            k,
            lu_values: vec![0.0; sym.lu_col_idx.len() * k],
            off_values: vec![0.0; sym.off_col_idx.len() * k],
            work: vec![0.0; sym.n * k],
            lrow: vec![0.0; k],
            xbuf: vec![0.0; sym.n * k],
            sym,
            numeric_hist: rotsv_obs::metrics_enabled().then(|| rotsv_obs::histogram("lu.numeric")),
        }
    }

    /// Records a numeric sweep's wall time into `lu.numeric` (drift
    /// re-analyses attribute to the `lu.*` stage histograms instead).
    /// `t0` comes from [`BatchedLu::sweep_clock`]; both are `None` when
    /// metrics were disabled at construction.
    fn observe_sweep(&self, t0: Option<std::time::Instant>) {
        if let (Some(hist), Some(t0)) = (&self.numeric_hist, t0) {
            hist.observe(t0.elapsed().as_secs_f64());
        }
    }

    /// Reads the clock only when the `lu.numeric` handle is live.
    fn sweep_clock(&self) -> Option<std::time::Instant> {
        self.numeric_hist
            .as_ref()
            .map(|_| std::time::Instant::now())
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.k
    }

    /// The shared symbolic analysis.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.sym
    }

    /// Replaces the analysis after a pivot-drift re-analysis, resizing
    /// every value buffer to the new fill pattern.
    fn adopt(&mut self, sym: Arc<SymbolicLu>) {
        self.lu_values = vec![0.0; sym.lu_col_idx.len() * self.k];
        self.off_values = vec![0.0; sym.off_col_idx.len() * self.k];
        self.work = vec![0.0; sym.n * self.k];
        self.xbuf = vec![0.0; sym.n * self.k];
        self.sym = sym;
    }

    /// Rebuilds a scalar probe matrix from one lane's values and
    /// re-analyzes it under the batch's existing options.
    fn reanalyze_from_lane(
        &self,
        pattern: &SparseMatrix,
        values: &[f64],
        lane: usize,
    ) -> Result<Arc<SymbolicLu>, SolveError> {
        let mut probe = pattern.clone();
        probe.zero_values();
        for s in 0..pattern.nnz() {
            probe.add_slot(s, values[s * self.k + lane]);
        }
        Ok(Arc::new(SymbolicLu::analyze_with(&probe, self.sym.opts)?))
    }

    /// Refactors all lanes from `values` — `a.nnz() * k` lane-interleaved
    /// entries over `pattern`'s CSR slots. Returns the number of fresh
    /// symbolic analyses performed (0 on the fast path; ≥ 1 when pivot
    /// drift in some lane forced a shared re-analysis).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a lane stays singular after
    /// re-analysis, [`SolveError::DimensionMismatch`] on a pattern of
    /// the wrong dimension.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != pattern.nnz() * lanes`.
    pub fn refactor(&mut self, pattern: &SparseMatrix, values: &[f64]) -> Result<u64, SolveError> {
        let _span = rotsv_obs::span!("lu_refactor_batch", "k" = self.k);
        assert_eq!(
            values.len(),
            pattern.nnz() * self.k,
            "lane-interleaved value length mismatch"
        );
        if pattern.dim() != self.sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.sym.n,
                actual: pattern.dim(),
            });
        }
        let mut analyses = 0u64;
        loop {
            let t0 = self.sweep_clock();
            let swept = match self.k {
                1 => self.refactor_lanes_k::<1>(pattern, values),
                2 => self.refactor_lanes_k::<2>(pattern, values),
                3 => self.refactor_lanes_k::<3>(pattern, values),
                4 => self.refactor_lanes_k::<4>(pattern, values),
                5 => self.refactor_lanes_k::<5>(pattern, values),
                6 => self.refactor_lanes_k::<6>(pattern, values),
                7 => self.refactor_lanes_k::<7>(pattern, values),
                8 => self.refactor_lanes_k::<8>(pattern, values),
                16 => self.refactor_lanes_k::<16>(pattern, values),
                32 => self.refactor_lanes_k::<32>(pattern, values),
                64 => self.refactor_lanes_k::<64>(pattern, values),
                _ => self.refactor_lanes(pattern, values),
            };
            self.observe_sweep(t0);
            match swept {
                Ok(()) => return Ok(analyses),
                Err((lane, SolveError::Singular { .. })) if analyses < 2 => {
                    // The shared pivot order failed for `lane`: re-analyze
                    // from that lane's values. The new order applies to
                    // every lane (the pattern is shared).
                    let sym = self.reanalyze_from_lane(pattern, values, lane)?;
                    analyses += 1;
                    self.adopt(sym);
                }
                Err((_, e)) => return Err(e),
            }
        }
    }

    /// Refactors only the lanes with `mask[lane] == true`, leaving every
    /// other lane's stored factors untouched. This is the entry point for
    /// asynchronous batched transients, where lanes request fresh factors
    /// at different iterations: each lane is swept by a scalar Doolittle
    /// pass with the same per-lane operation order as
    /// [`BatchedLu::refactor`], so a lane's factors are bit-identical no
    /// matter which other lanes factor alongside it.
    ///
    /// Returns `(analyses, invalidated)`: `analyses` counts fresh symbolic
    /// analyses; `invalidated` is `true` when pivot drift in a masked lane
    /// forced a shared re-analysis, which destroys the stored factors of
    /// every *unmasked* lane (the masked ones are refactored under the new
    /// pivot order before returning). The caller must then refresh the
    /// unmasked lanes before their next solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a masked lane stays singular
    /// after re-analysis, [`SolveError::DimensionMismatch`] on a pattern
    /// of the wrong dimension.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != pattern.nnz() * lanes` or
    /// `mask.len() != lanes`.
    pub fn refactor_masked(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
        mask: &[bool],
    ) -> Result<(u64, bool), SolveError> {
        let _span = rotsv_obs::span!("lu_refactor_masked", "k" = self.k);
        assert_eq!(
            values.len(),
            pattern.nnz() * self.k,
            "lane-interleaved value length mismatch"
        );
        assert_eq!(mask.len(), self.k, "mask length mismatch");
        if pattern.dim() != self.sym.n {
            return Err(SolveError::DimensionMismatch {
                expected: self.sym.n,
                actual: pattern.dim(),
            });
        }
        let mut analyses = 0u64;
        let mut invalidated = false;
        'retry: loop {
            for (lane, &refresh) in mask.iter().enumerate() {
                if !refresh {
                    continue;
                }
                let t0 = self.sweep_clock();
                let swept = self.refactor_lane(pattern, values, lane);
                self.observe_sweep(t0);
                match swept {
                    Ok(()) => {}
                    Err(SolveError::Singular { .. }) if analyses < 2 => {
                        // The shared pivot order failed for `lane`:
                        // re-analyze from that lane's values. The new order
                        // applies to every lane, so all previously stored
                        // factors are gone.
                        let sym = self.reanalyze_from_lane(pattern, values, lane)?;
                        analyses += 1;
                        invalidated = true;
                        self.adopt(sym);
                        continue 'retry;
                    }
                    Err(e) => return Err(e),
                }
            }
            return Ok((analyses, invalidated));
        }
    }

    /// Scalar Doolittle sweep of a single lane over the strided storage.
    /// Per-lane operation order matches [`BatchedLu::refactor_lanes`]
    /// exactly (scatter row `perm[i]` through the analysis map, eliminate
    /// in-block columns `j < i` in ascending order, gather, pivot check),
    /// so the lane's factors are bit-identical to a full-batch refactor
    /// of the same values.
    fn refactor_lane(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
        lane: usize,
    ) -> Result<(), SolveError> {
        let sym = Arc::clone(&self.sym);
        let k = self.k;
        for i in 0..sym.n {
            let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
            for s in lo..hi {
                self.work[sym.lu_col_idx[s] * k + lane] = 0.0;
            }
            // Scatter row perm[i] of A (this lane only) through the
            // analysis map: scale, then route in-block or off-block.
            let abase = pattern.row_ptr[sym.perm[i]];
            for (t, q) in (sym.amap_ptr[i]..sym.amap_ptr[i + 1]).enumerate() {
                let v = values[(abase + t) * k + lane] * sym.amap_scale[q];
                let dest = sym.amap_dest[q];
                if dest & 1 == 0 {
                    self.work[(dest >> 1) * k + lane] = v;
                } else {
                    self.off_values[(dest >> 1) * k + lane] = v;
                }
            }
            // Eliminate in-block columns j < i in ascending order.
            for s in lo..sym.diag_slot[i] {
                let j = sym.lu_col_idx[s];
                let l = self.work[j * k + lane] / self.lu_values[sym.diag_slot[j] * k + lane];
                self.work[j * k + lane] = l;
                for m in (sym.diag_slot[j] + 1)..sym.lu_row_ptr[j + 1] {
                    self.work[sym.lu_col_idx[m] * k + lane] -= l * self.lu_values[m * k + lane];
                }
            }
            // Gather the finished row, accumulating the multiplier
            // growth in the same pass (the slots left of the diagonal
            // hold the row's L multipliers), then check the pivot.
            let mut lmax = 0.0f64;
            for s in lo..sym.diag_slot[i] {
                let v = self.work[sym.lu_col_idx[s] * k + lane];
                self.lu_values[s * k + lane] = v;
                let a = v.abs();
                lmax = if a > lmax { a } else { lmax };
            }
            for s in sym.diag_slot[i]..hi {
                self.lu_values[s * k + lane] = self.work[sym.lu_col_idx[s] * k + lane];
            }
            let piv = self.lu_values[sym.diag_slot[i] * k + lane].abs();
            if piv <= PIVOT_EPS || !piv.is_finite() || lmax > PIVOT_GROWTH_LIMIT {
                return Err(SolveError::Singular { column: i });
            }
        }
        Ok(())
    }

    /// Monomorphized Doolittle sweep, dispatched to the widest SIMD arm
    /// the detected ISA supports and `K` is a multiple of. All arms run
    /// [`BatchedLu::refactor_sweep_body`] — same elimination order,
    /// IEEE-exact lane-wise ops only — so results are bit-identical
    /// across dispatch levels and to [`BatchedLu::refactor_lane`].
    fn refactor_lanes_k<const K: usize>(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
    ) -> Result<(), (usize, SolveError)> {
        #[cfg(target_arch = "x86_64")]
        {
            use crate::simd::Level;
            let level = simd::level();
            if K.is_multiple_of(8) && level == Level::Avx512 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.refactor_sweep_avx512::<K>(pattern, values) };
            }
            if K.is_multiple_of(4) && level >= Level::Avx2 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.refactor_sweep_avx2::<K>(pattern, values) };
            }
        }
        // SAFETY: the scalar arm has no ISA requirements.
        unsafe { self.refactor_sweep_body::<K, ScalarLanes>(pattern, values) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    fn refactor_sweep_avx512<const K: usize>(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
    ) -> Result<(), (usize, SolveError)> {
        // SAFETY: caller verified avx512f; we are in a matching region.
        unsafe { self.refactor_sweep_body::<K, crate::simd::Avx512Lanes>(pattern, values) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn refactor_sweep_avx2<const K: usize>(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
    ) -> Result<(), (usize, SolveError)> {
        // SAFETY: caller verified avx2; we are in a matching region.
        unsafe { self.refactor_sweep_body::<K, crate::simd::Avx2Lanes>(pattern, values) }
    }

    /// The Doolittle sweep kernel: `K` lanes in `K / S::W` vector
    /// chunks. Per-lane arithmetic and ordering are exactly those of
    /// [`BatchedLu::refactor_lane`]; the multiplier-growth maximum is
    /// accumulated during the L-part gather (one pass, select-form
    /// max), and the pivot acceptance check stays scalar so error
    /// classification is identical in every arm.
    ///
    /// # Safety
    ///
    /// `S`'s ISA must be available and enabled in the enclosing region;
    /// `K` must be a multiple of `S::W` and equal `self.k`.
    #[inline(always)]
    unsafe fn refactor_sweep_body<const K: usize, S: Simd>(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
    ) -> Result<(), (usize, SolveError)> {
        debug_assert_eq!(self.k, K);
        debug_assert_eq!(K % S::W, 0);
        debug_assert_eq!(values.len(), pattern.nnz() * K);
        let sym = Arc::clone(&self.sym);
        let wp = self.work.as_mut_ptr();
        let lup = self.lu_values.as_mut_ptr();
        let offp = self.off_values.as_mut_ptr();
        let vp = values.as_ptr();
        // SAFETY (whole body): all indices come from the symbolic
        // analysis, which the constructor sized every buffer against;
        // chunks stay inside `slot * K + K` because `K % S::W == 0`.
        unsafe {
            let zero = S::splat(0.0);
            for i in 0..sym.n {
                let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
                for s in lo..hi {
                    let base = sym.lu_col_idx[s] * K;
                    for c in (0..K).step_by(S::W) {
                        S::st(wp.add(base + c), zero);
                    }
                }
                // Scatter row perm[i] of A (all lanes at once) through
                // the analysis map.
                let abase = pattern.row_ptr[sym.perm[i]];
                for (t, q) in (sym.amap_ptr[i]..sym.amap_ptr[i + 1]).enumerate() {
                    let sc = S::splat(sym.amap_scale[q]);
                    let src = (abase + t) * K;
                    let dest = sym.amap_dest[q];
                    let dst = (dest >> 1) * K;
                    let out = if dest & 1 == 0 { wp } else { offp };
                    for c in (0..K).step_by(S::W) {
                        let v = S::mul(S::ld(vp.add(src + c)), sc);
                        S::st(out.add(dst + c), v);
                    }
                }
                // Eliminate in-block columns j < i in ascending order,
                // lanes in lockstep (chunk-outer keeps the multiplier in
                // a register across the update row).
                for s in lo..sym.diag_slot[i] {
                    let j = sym.lu_col_idx[s];
                    let dj = sym.diag_slot[j] * K;
                    let jb = j * K;
                    let m_lo = sym.diag_slot[j] + 1;
                    let m_hi = sym.lu_row_ptr[j + 1];
                    for c in (0..K).step_by(S::W) {
                        let l = S::div(S::ld(wp.add(jb + c)), S::ld(lup.add(dj + c)));
                        S::st(wp.add(jb + c), l);
                        for m in m_lo..m_hi {
                            let dst = sym.lu_col_idx[m] * K + c;
                            let cur = S::ld(wp.add(dst));
                            S::st(
                                wp.add(dst),
                                S::sub(cur, S::mul(l, S::ld(lup.add(m * K + c)))),
                            );
                        }
                    }
                }
                // Gather the finished row; the L part accumulates the
                // per-lane multiplier growth in the same pass.
                let dsl = sym.diag_slot[i];
                let mut lmax = [0.0f64; K];
                let lmp = lmax.as_mut_ptr();
                for s in lo..dsl {
                    let src = sym.lu_col_idx[s] * K;
                    let dst = s * K;
                    for c in (0..K).step_by(S::W) {
                        let v = S::ld(wp.add(src + c));
                        S::st(lup.add(dst + c), v);
                        let acc = S::ld(lmp.add(c) as *const f64);
                        S::st(lmp.add(c), S::max_sel(S::abs(v), acc));
                    }
                }
                for s in dsl..hi {
                    let src = sym.lu_col_idx[s] * K;
                    let dst = s * K;
                    for c in (0..K).step_by(S::W) {
                        S::st(lup.add(dst + c), S::ld(wp.add(src + c)));
                    }
                }
                // Scalar pivot acceptance, identical in every arm. Reads
                // go through the same raw pointer as the writes so the
                // pointer's provenance stays valid for the next row.
                let dslot = dsl * K;
                for (lane, &lm) in lmax.iter().enumerate() {
                    let piv = (*lup.add(dslot + lane)).abs();
                    if piv <= PIVOT_EPS || !piv.is_finite() || lm > PIVOT_GROWTH_LIMIT {
                        return Err((lane, SolveError::Singular { column: i }));
                    }
                }
            }
        }
        Ok(())
    }

    /// One Doolittle sweep over all lanes; fails with the first lane
    /// whose pivot is unusable.
    fn refactor_lanes(
        &mut self,
        pattern: &SparseMatrix,
        values: &[f64],
    ) -> Result<(), (usize, SolveError)> {
        let sym = &self.sym;
        let k = self.k;
        for i in 0..sym.n {
            let (lo, hi) = (sym.lu_row_ptr[i], sym.lu_row_ptr[i + 1]);
            for s in lo..hi {
                let base = sym.lu_col_idx[s] * k;
                self.work[base..base + k].fill(0.0);
            }
            // Scatter row perm[i] of A (all lanes at once) through the
            // analysis map.
            let abase = pattern.row_ptr[sym.perm[i]];
            for (t, q) in (sym.amap_ptr[i]..sym.amap_ptr[i + 1]).enumerate() {
                let sc = sym.amap_scale[q];
                let src = (abase + t) * k;
                let dest = sym.amap_dest[q];
                let dst = (dest >> 1) * k;
                if dest & 1 == 0 {
                    for lane in 0..k {
                        self.work[dst + lane] = values[src + lane] * sc;
                    }
                } else {
                    for lane in 0..k {
                        self.off_values[dst + lane] = values[src + lane] * sc;
                    }
                }
            }
            // Eliminate in-block columns j < i in ascending order, lanes
            // in lockstep.
            for s in lo..sym.diag_slot[i] {
                let j = sym.lu_col_idx[s];
                let dj = sym.diag_slot[j] * k;
                for lane in 0..k {
                    let l = self.work[j * k + lane] / self.lu_values[dj + lane];
                    self.lrow[lane] = l;
                    self.work[j * k + lane] = l;
                }
                for m in (sym.diag_slot[j] + 1)..sym.lu_row_ptr[j + 1] {
                    let dst = sym.lu_col_idx[m] * k;
                    let lum = m * k;
                    for lane in 0..k {
                        self.work[dst + lane] -= self.lrow[lane] * self.lu_values[lum + lane];
                    }
                }
            }
            // Gather the finished row, then check every lane's pivot and
            // multiplier growth (the slots left of the diagonal hold the
            // row's L multipliers).
            for s in lo..hi {
                let src = sym.lu_col_idx[s] * k;
                let dst = s * k;
                self.lu_values[dst..dst + k].copy_from_slice(&self.work[src..src + k]);
            }
            let dslot = sym.diag_slot[i] * k;
            for lane in 0..k {
                let mut lmax = 0.0f64;
                for s in lo..sym.diag_slot[i] {
                    lmax = lmax.max(self.lu_values[s * k + lane].abs());
                }
                let piv = self.lu_values[dslot + lane].abs();
                if piv <= PIVOT_EPS || !piv.is_finite() || lmax > PIVOT_GROWTH_LIMIT {
                    return Err((lane, SolveError::Singular { column: i }));
                }
            }
        }
        Ok(())
    }

    /// Solves all lanes in place: `b` holds `n * k` lane-interleaved
    /// right-hand sides on entry and the solutions on return.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim * lanes`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) {
        let _span = rotsv_obs::span!("lu_solve_batch", "k" = self.k);
        assert_eq!(
            b.len(),
            self.sym.n * self.k,
            "lane-interleaved rhs length mismatch"
        );
        match self.k {
            1 => self.solve_in_place_k::<1>(b),
            2 => self.solve_in_place_k::<2>(b),
            3 => self.solve_in_place_k::<3>(b),
            4 => self.solve_in_place_k::<4>(b),
            5 => self.solve_in_place_k::<5>(b),
            6 => self.solve_in_place_k::<6>(b),
            7 => self.solve_in_place_k::<7>(b),
            8 => self.solve_in_place_k::<8>(b),
            16 => self.solve_in_place_k::<16>(b),
            32 => self.solve_in_place_k::<32>(b),
            64 => self.solve_in_place_k::<64>(b),
            _ => self.solve_in_place_dyn(b),
        }
    }

    /// Monomorphized substitution, dispatched like
    /// [`BatchedLu::refactor_lanes_k`]: each row's lanes accumulate in
    /// vector registers across the inner loops instead of
    /// read-modify-write memory traffic per entry. Same operation order
    /// as the dynamic path, so results are bit-identical.
    fn solve_in_place_k<const K: usize>(&mut self, b: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        {
            use crate::simd::Level;
            let level = simd::level();
            if K.is_multiple_of(8) && level == Level::Avx512 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.solve_avx512::<K>(b) };
            }
            if K.is_multiple_of(4) && level >= Level::Avx2 {
                // SAFETY: `level()` is clamped to detected features.
                return unsafe { self.solve_avx2::<K>(b) };
            }
        }
        // SAFETY: the scalar arm has no ISA requirements.
        unsafe { self.solve_body::<K, ScalarLanes>(b) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    fn solve_avx512<const K: usize>(&mut self, b: &mut [f64]) {
        // SAFETY: caller verified avx512f; we are in a matching region.
        unsafe { self.solve_body::<K, crate::simd::Avx512Lanes>(b) }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn solve_avx2<const K: usize>(&mut self, b: &mut [f64]) {
        // SAFETY: caller verified avx2; we are in a matching region.
        unsafe { self.solve_body::<K, crate::simd::Avx2Lanes>(b) }
    }

    /// The substitution kernel: `K` lanes in `K / S::W` vector chunks,
    /// accumulators held in registers across each row's inner loop.
    ///
    /// # Safety
    ///
    /// `S`'s ISA must be available and enabled in the enclosing region;
    /// `K` must be a multiple of `S::W` and equal `self.k`.
    #[inline(always)]
    unsafe fn solve_body<const K: usize, S: Simd>(&mut self, b: &mut [f64]) {
        debug_assert_eq!(self.k, K);
        debug_assert_eq!(K % S::W, 0);
        debug_assert_eq!(b.len(), self.sym.n * K);
        let sym = Arc::clone(&self.sym);
        let xp = self.xbuf.as_mut_ptr();
        let lup = self.lu_values.as_ptr();
        let offp = self.off_values.as_ptr();
        let bp = b.as_mut_ptr();
        // SAFETY (whole body): indices come from the symbolic analysis
        // the buffers were sized against; `K % S::W == 0` keeps chunks
        // inside each slot's lane group.
        unsafe {
            // Permute and row-scale the right-hand sides.
            for i in 0..sym.n {
                let r = sym.perm[i];
                let rs = S::splat(sym.row_scale[r]);
                for c in (0..K).step_by(S::W) {
                    S::st(xp.add(i * K + c), S::mul(S::ld(bp.add(r * K + c)), rs));
                }
            }
            for bidx in 0..sym.block_ptr.len() - 1 {
                let (bs, be) = (sym.block_ptr[bidx], sym.block_ptr[bidx + 1]);
                // Subtract the couplings to earlier (already solved)
                // blocks.
                for i in bs..be {
                    for c in (0..K).step_by(S::W) {
                        let mut acc = S::ld(xp.add(i * K + c));
                        for s in sym.off_row_ptr[i]..sym.off_row_ptr[i + 1] {
                            let col = sym.off_col_idx[s] * K + c;
                            acc =
                                S::sub(acc, S::mul(S::ld(offp.add(s * K + c)), S::ld(xp.add(col))));
                        }
                        S::st(xp.add(i * K + c), acc);
                    }
                }
                // Forward substitution with unit-diagonal L.
                for i in bs..be {
                    for c in (0..K).step_by(S::W) {
                        let mut acc = S::ld(xp.add(i * K + c));
                        for s in sym.lu_row_ptr[i]..sym.diag_slot[i] {
                            let col = sym.lu_col_idx[s] * K + c;
                            acc =
                                S::sub(acc, S::mul(S::ld(lup.add(s * K + c)), S::ld(xp.add(col))));
                        }
                        S::st(xp.add(i * K + c), acc);
                    }
                }
                // Back substitution with U.
                for i in (bs..be).rev() {
                    let d = sym.diag_slot[i] * K;
                    for c in (0..K).step_by(S::W) {
                        let mut acc = S::ld(xp.add(i * K + c));
                        for s in (sym.diag_slot[i] + 1)..sym.lu_row_ptr[i + 1] {
                            let col = sym.lu_col_idx[s] * K + c;
                            acc =
                                S::sub(acc, S::mul(S::ld(lup.add(s * K + c)), S::ld(xp.add(col))));
                        }
                        S::st(xp.add(i * K + c), S::div(acc, S::ld(lup.add(d + c))));
                    }
                }
            }
            // Undo the column permutation and scaling.
            for j in 0..sym.n {
                let col = sym.cperm[j];
                let cs = S::splat(sym.col_scale[col]);
                for c in (0..K).step_by(S::W) {
                    S::st(bp.add(col * K + c), S::mul(cs, S::ld(xp.add(j * K + c))));
                }
            }
        }
    }

    /// Fallback for lane counts without a monomorphized kernel.
    fn solve_in_place_dyn(&mut self, b: &mut [f64]) {
        let sym = &self.sym;
        let k = self.k;
        // Permute and row-scale the right-hand sides (all lanes at once).
        for i in 0..sym.n {
            let r = sym.perm[i];
            let rs = sym.row_scale[r];
            let src = r * k;
            for lane in 0..k {
                self.xbuf[i * k + lane] = b[src + lane] * rs;
            }
        }
        let x = &mut self.xbuf;
        for bidx in 0..sym.block_ptr.len() - 1 {
            let (bs, be) = (sym.block_ptr[bidx], sym.block_ptr[bidx + 1]);
            // Subtract the couplings to earlier (already solved) blocks.
            for i in bs..be {
                for s in sym.off_row_ptr[i]..sym.off_row_ptr[i + 1] {
                    let c = sym.off_col_idx[s] * k;
                    let ov = s * k;
                    for lane in 0..k {
                        x[i * k + lane] -= self.off_values[ov + lane] * x[c + lane];
                    }
                }
            }
            // Forward substitution with unit-diagonal L.
            for i in bs..be {
                for s in sym.lu_row_ptr[i]..sym.diag_slot[i] {
                    let c = sym.lu_col_idx[s] * k;
                    let lus = s * k;
                    for lane in 0..k {
                        x[i * k + lane] -= self.lu_values[lus + lane] * x[c + lane];
                    }
                }
            }
            // Back substitution with U.
            for i in (bs..be).rev() {
                for s in (sym.diag_slot[i] + 1)..sym.lu_row_ptr[i + 1] {
                    let c = sym.lu_col_idx[s] * k;
                    let lus = s * k;
                    for lane in 0..k {
                        x[i * k + lane] -= self.lu_values[lus + lane] * x[c + lane];
                    }
                }
                let d = sym.diag_slot[i] * k;
                for lane in 0..k {
                    x[i * k + lane] /= self.lu_values[d + lane];
                }
            }
        }
        // Undo the column permutation and scaling.
        for j in 0..sym.n {
            let c = sym.cperm[j];
            let cs = sym.col_scale[c];
            let dst = c * k;
            for lane in 0..k {
                b[dst + lane] = cs * x[j * k + lane];
            }
        }
    }
}
