//! Branch-free elementary functions for lane-batched kernels.
//!
//! The batched Monte-Carlo engine evaluates the MOSFET model for K dies
//! in lockstep, with the lane index as the innermost loop. That loop
//! only autovectorizes if every operation inside it is branch-free and
//! call-free: `libm`'s `exp`/`ln` are opaque calls with internal
//! branches, so this module provides polynomial replacements written as
//! straight-line arithmetic (plus `select`-style conditionals that LLVM
//! lowers to vector blends).
//!
//! Accuracy is a few ulp worse than `libm` (relative error ≲ 1e-14 over
//! the simulator's operating range), far inside the batched engine's
//! 0.5 % agreement budget against the scalar engine — which keeps using
//! `libm` so the golden results stay untouched.
//!
//! Three forms of each function coexist, all bit-identical per lane:
//! the scalar reference (`exp`), the const-K array form (`exp_k`, the
//! autovectorizing fallback), and the explicit vector form (`exp_v`,
//! generic over a [`crate::simd::Simd`] ISA token, used by the
//! runtime-dispatched kernels). Identity holds because every form
//! performs the same IEEE-exact operations in the same association
//! order, uses select-form conditionals (never `maxpd`-style min/max),
//! and never fuses a multiply-add.

/// log2(e).
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// ln(2) split for Cody–Waite range reduction: the hi part's low
/// mantissa bits are zero so `n · LN2_HI` is exact for the n in range.
const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000); // ≈ 6.93147180369123816e-1
const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76); // ≈ 1.90821492927058770e-10
/// 1.5 · 2⁵², the round-to-nearest-integer shifter.
const SHIFT: f64 = 6_755_399_441_055_744.0;

/// Select-form clamp to `[-60, 60]`, shared by every `exp` form.
/// Identical to `f64::clamp(-60.0, 60.0)` for all inputs (including
/// NaN, which passes through both) but expressed as two compares +
/// selects so the scalar and vector arms lower to the same semantics.
#[inline(always)]
fn clamp_pm60(x: f64) -> f64 {
    let x = if -60.0 > x { -60.0 } else { x };
    if x > 60.0 {
        60.0
    } else {
        x
    }
}

/// Select-form `max(t, 0.0)`, shared by every softplus form. Identical
/// in value to `f64::max(t, 0.0)` everywhere the result is consumed
/// (NaN → 0.0 both ways; a `-0.0` vs `+0.0` pick is erased by the
/// following add), but expressed as compare + select so scalar and
/// vector arms match.
#[inline(always)]
fn max0(t: f64) -> f64 {
    if t > 0.0 {
        t
    } else {
        0.0
    }
}

/// Branch-free `exp(x)` with the same `[-60, 60]` argument clamp as the
/// scalar model's `safe_exp`.
///
/// Range reduction `x = n·ln2 + r` with `|r| ≤ ln2/2` via the
/// shift-add rounding trick (no `round` libcall), a degree-13 Taylor
/// polynomial on `r`, and exponent reassembly through the IEEE-754 bit
/// pattern. Every step is straight-line arithmetic, so a loop of these
/// across lanes vectorizes. The polynomial is evaluated in Estrin form
/// rather than Horner: the four sub-polynomials are independent, so the
/// serial dependency chain is ~4 FMAs instead of 13 and a single lane
/// (the batched engine at K = 1, or a refill remainder) is not
/// latency-bound.
///
/// # Examples
///
/// ```
/// let y = rotsv_num::lanes::exp(1.0);
/// assert!((y - std::f64::consts::E).abs() < 1e-14);
/// ```
#[inline(always)]
pub fn exp(x: f64) -> f64 {
    let x = clamp_pm60(x);
    // n = round(x / ln2) without a round() call: adding 1.5·2⁵² forces
    // the low mantissa bits to hold the rounded integer.
    let t = x * LOG2_E + SHIFT;
    let n = t - SHIFT;
    // r = x - n·ln2 in two pieces to keep the reduction exact.
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // exp(r) on |r| ≤ 0.3466 in Estrin form; remainder < 1e-16 relative.
    let p = poly_exp(r);
    // 2ⁿ via the exponent field; |n| ≤ 87 so no overflow handling.
    let ni = n as i64;
    let scale = f64::from_bits(((ni + 1023) << 52) as u64);
    p * scale
}

/// Taylor coefficients of `exp` (degree 13), enough for < 1e-16
/// relative remainder on `|r| ≤ ln2/2`.
const EXP_C: [f64; 14] = [
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5_040.0,
    1.0 / 40_320.0,
    1.0 / 362_880.0,
    1.0 / 3_628_800.0,
    1.0 / 39_916_800.0,
    1.0 / 479_001_600.0,
    1.0 / 6_227_020_800.0,
];

/// Degree-13 Taylor polynomial of `exp` on `|r| ≤ ln2/2`, Estrin form.
/// The scalar and array evaluations share this exact association so
/// they stay bit-identical to each other.
#[inline(always)]
fn poly_exp(r: f64) -> f64 {
    let c = &EXP_C;
    let r2 = r * r;
    let r4 = r2 * r2;
    let a0 = (c[0] + c[1] * r) + r2 * (c[2] + c[3] * r);
    let a1 = (c[4] + c[5] * r) + r2 * (c[6] + c[7] * r);
    let a2 = (c[8] + c[9] * r) + r2 * (c[10] + c[11] * r);
    let a3 = c[12] + c[13] * r;
    a0 + r4 * (a1 + r4 * (a2 + r4 * a3))
}

/// atanh-series coefficients `1/(2k+1)` for `ln z = 2·w·Σ w²ᵏ/(2k+1)`.
const LN_D: [f64; 17] = [
    1.0,
    1.0 / 3.0,
    1.0 / 5.0,
    1.0 / 7.0,
    1.0 / 9.0,
    1.0 / 11.0,
    1.0 / 13.0,
    1.0 / 15.0,
    1.0 / 17.0,
    1.0 / 19.0,
    1.0 / 21.0,
    1.0 / 23.0,
    1.0 / 25.0,
    1.0 / 27.0,
    1.0 / 29.0,
    1.0 / 31.0,
    1.0 / 33.0,
];

/// Branch-free `ln(1 + u)` for `u ∈ [0, 1]`.
///
/// Uses the atanh form `ln z = 2·atanh((z−1)/(z+1))` with `z = 1 + u`,
/// so the series argument `w ≤ 1/3` and a degree-16 evaluation in `w²`
/// reaches full double precision. Like the `exp` polynomial, the
/// series is evaluated in Estrin form (independent sub-polynomials
/// combined by powers of `w⁸`) so the latency chain stays short even
/// for one lane; the scalar and array evaluations share the exact
/// association.
///
/// # Examples
///
/// ```
/// let y = rotsv_num::lanes::ln1p01(0.5);
/// assert!((y - 1.5f64.ln()).abs() < 1e-15);
/// ```
#[inline(always)]
pub fn ln1p01(u: f64) -> f64 {
    let d = &LN_D;
    let w = u / (2.0 + u);
    let w2 = w * w;
    let w4 = w2 * w2;
    let w8 = w4 * w4;
    let b0 = (d[0] + d[1] * w2) + w4 * (d[2] + d[3] * w2);
    let b1 = (d[4] + d[5] * w2) + w4 * (d[6] + d[7] * w2);
    let b2 = (d[8] + d[9] * w2) + w4 * (d[10] + d[11] * w2);
    let b3 = (d[12] + d[13] * w2) + w4 * (d[14] + d[15] * w2);
    let s = b0 + w8 * (b1 + w8 * (b2 + w8 * (b3 + w8 * d[16])));
    2.0 * w * s
}

/// Branch-free unit-scale softplus `ln(1 + eᵗ)` and logistic
/// `σ(t) = 1/(1 + e⁻ᵗ)`, the pair the MOSFET model's smooth clamps are
/// built from.
///
/// Matches the scalar model's `softplus_grad(x, s)` after scaling
/// (`t = x/s`, softplus scaled by `s`), including its large-argument
/// short-circuit: for `t > 30` the pair is exactly `(t, 1)`.
#[inline(always)]
pub fn softplus_sig(t: f64) -> (f64, f64) {
    // exp(-|t|) ∈ (0, 1]: always in ln1p01's domain. The [-60, 60]
    // clamp inside `exp` mirrors the scalar model's safe_exp.
    let e = exp(-t.abs());
    let q = e / (1.0 + e); // σ(-|t|) ∈ (0, 1/2]
    let sp = max0(t) + ln1p01(e);
    let big = t > 30.0;
    let sp = if big { t } else { sp };
    let sig_pos = if big { 1.0 } else { 1.0 - q };
    let sig = if t >= 0.0 { sig_pos } else { q };
    (sp, sig)
}

/// Array form of [`exp`]: all `K` lanes advance through the range
/// reduction and the Estrin polynomial together, so each step is one
/// vector instruction and the polynomial's latency chain is hidden
/// across lanes.
///
/// The per-lane arithmetic repeats the scalar [`exp`] operation for
/// operation — same reduction, same polynomial association, same
/// exponent reassembly — so `exp_k([x; K])[l]` is **bit-identical** to
/// `exp(x)` for every lane. The batched Monte-Carlo engine relies on
/// this: a die simulated in a K-wide batch must produce the same bits
/// as the same die simulated alone.
///
/// # Examples
///
/// ```
/// let y = rotsv_num::lanes::exp_k([0.0, 1.0]);
/// assert!((y[1] - std::f64::consts::E).abs() < 1e-14);
/// ```
#[inline(always)]
pub fn exp_k<const K: usize>(x: [f64; K]) -> [f64; K] {
    let mut n = [0.0; K];
    let mut r = [0.0; K];
    for l in 0..K {
        let xl = clamp_pm60(x[l]);
        let t = xl * LOG2_E + SHIFT;
        n[l] = t - SHIFT;
        r[l] = (xl - n[l] * LN2_HI) - n[l] * LN2_LO;
    }
    let c = &EXP_C;
    let mut y = [0.0; K];
    for l in 0..K {
        let rl = r[l];
        let r2 = rl * rl;
        let r4 = r2 * r2;
        let a0 = (c[0] + c[1] * rl) + r2 * (c[2] + c[3] * rl);
        let a1 = (c[4] + c[5] * rl) + r2 * (c[6] + c[7] * rl);
        let a2 = (c[8] + c[9] * rl) + r2 * (c[10] + c[11] * rl);
        let a3 = c[12] + c[13] * rl;
        let p = a0 + r4 * (a1 + r4 * (a2 + r4 * a3));
        let ni = n[l] as i64;
        let scale = f64::from_bits(((ni + 1023) << 52) as u64);
        y[l] = p * scale;
    }
    y
}

/// Array form of [`ln1p01`]; same domain (`u ∈ [0, 1]`), lanes in
/// lockstep, each lane bit-identical to the scalar function (same
/// Estrin association per lane).
#[inline(always)]
pub fn ln1p01_k<const K: usize>(u: [f64; K]) -> [f64; K] {
    let d = &LN_D;
    let mut y = [0.0; K];
    for l in 0..K {
        let w = u[l] / (2.0 + u[l]);
        let w2 = w * w;
        let w4 = w2 * w2;
        let w8 = w4 * w4;
        let b0 = (d[0] + d[1] * w2) + w4 * (d[2] + d[3] * w2);
        let b1 = (d[4] + d[5] * w2) + w4 * (d[6] + d[7] * w2);
        let b2 = (d[8] + d[9] * w2) + w4 * (d[10] + d[11] * w2);
        let b3 = (d[12] + d[13] * w2) + w4 * (d[14] + d[15] * w2);
        let s = b0 + w8 * (b1 + w8 * (b2 + w8 * (b3 + w8 * d[16])));
        y[l] = 2.0 * w * s;
    }
    y
}

/// Array form of [`softplus_sig`]: `(softplus, sigma)` for all `K`
/// lanes in lockstep. Bit-identical per lane to the scalar function.
#[inline(always)]
pub fn softplus_sig_k<const K: usize>(t: [f64; K]) -> ([f64; K], [f64; K]) {
    let mut ta = [0.0; K];
    for l in 0..K {
        ta[l] = -t[l].abs();
    }
    let e = exp_k(ta);
    let ln = ln1p01_k(e);
    let mut sp = [0.0; K];
    let mut sig = [0.0; K];
    for l in 0..K {
        let q = e[l] / (1.0 + e[l]);
        let sp0 = max0(t[l]) + ln[l];
        let big = t[l] > 30.0;
        sp[l] = if big { t[l] } else { sp0 };
        let sig_pos = if big { 1.0 } else { 1.0 - q };
        sig[l] = if t[l] >= 0.0 { sig_pos } else { q };
    }
    (sp, sig)
}

use crate::simd::Simd;

/// Explicit vector form of [`exp`], generic over an ISA token.
///
/// Performs the scalar function's operations — select-form clamp,
/// shift-trick range reduction, the same Estrin association, exponent
/// reassembly via [`Simd::exp2_from_shifted`] — one vector at a time,
/// so every lane is **bit-identical** to [`exp`] of that lane.
///
/// # Safety
///
/// Instantiating at a wide token executes that ISA's instructions: the
/// caller must guarantee the features are available (see
/// [`crate::simd::level`]) and should call from a matching
/// `#[target_feature]` region.
#[inline(always)]
pub unsafe fn exp_v<S: Simd>(x: S::V) -> S::V {
    // SAFETY: caller upholds the ISA contract; ops are lane-wise exact.
    unsafe {
        let lo = S::splat(-60.0);
        let hi = S::splat(60.0);
        let x = S::sel(S::gt(lo, x), lo, x);
        let x = S::sel(S::gt(x, hi), hi, x);
        let t = S::add(S::mul(x, S::splat(LOG2_E)), S::splat(SHIFT));
        let n = S::sub(t, S::splat(SHIFT));
        let r = S::sub(
            S::sub(x, S::mul(n, S::splat(LN2_HI))),
            S::mul(n, S::splat(LN2_LO)),
        );
        let c = &EXP_C;
        let r2 = S::mul(r, r);
        let r4 = S::mul(r2, r2);
        let a0 = S::add(
            S::add(S::splat(c[0]), S::mul(S::splat(c[1]), r)),
            S::mul(r2, S::add(S::splat(c[2]), S::mul(S::splat(c[3]), r))),
        );
        let a1 = S::add(
            S::add(S::splat(c[4]), S::mul(S::splat(c[5]), r)),
            S::mul(r2, S::add(S::splat(c[6]), S::mul(S::splat(c[7]), r))),
        );
        let a2 = S::add(
            S::add(S::splat(c[8]), S::mul(S::splat(c[9]), r)),
            S::mul(r2, S::add(S::splat(c[10]), S::mul(S::splat(c[11]), r))),
        );
        let a3 = S::add(S::splat(c[12]), S::mul(S::splat(c[13]), r));
        let p = S::add(
            a0,
            S::mul(r4, S::add(a1, S::mul(r4, S::add(a2, S::mul(r4, a3))))),
        );
        S::mul(p, S::exp2_from_shifted(t))
    }
}

/// Explicit vector form of [`ln1p01`] (domain `u ∈ [0, 1]` per lane);
/// bit-identical per lane to the scalar function.
///
/// # Safety
///
/// Same ISA contract as [`exp_v`].
#[inline(always)]
pub unsafe fn ln1p01_v<S: Simd>(u: S::V) -> S::V {
    // SAFETY: caller upholds the ISA contract; ops are lane-wise exact.
    unsafe {
        let d = &LN_D;
        let w = S::div(u, S::add(S::splat(2.0), u));
        let w2 = S::mul(w, w);
        let w4 = S::mul(w2, w2);
        let w8 = S::mul(w4, w4);
        let b0 = S::add(
            S::add(S::splat(d[0]), S::mul(S::splat(d[1]), w2)),
            S::mul(w4, S::add(S::splat(d[2]), S::mul(S::splat(d[3]), w2))),
        );
        let b1 = S::add(
            S::add(S::splat(d[4]), S::mul(S::splat(d[5]), w2)),
            S::mul(w4, S::add(S::splat(d[6]), S::mul(S::splat(d[7]), w2))),
        );
        let b2 = S::add(
            S::add(S::splat(d[8]), S::mul(S::splat(d[9]), w2)),
            S::mul(w4, S::add(S::splat(d[10]), S::mul(S::splat(d[11]), w2))),
        );
        let b3 = S::add(
            S::add(S::splat(d[12]), S::mul(S::splat(d[13]), w2)),
            S::mul(w4, S::add(S::splat(d[14]), S::mul(S::splat(d[15]), w2))),
        );
        let s = S::add(
            b0,
            S::mul(
                w8,
                S::add(
                    b1,
                    S::mul(
                        w8,
                        S::add(b2, S::mul(w8, S::add(b3, S::mul(w8, S::splat(d[16]))))),
                    ),
                ),
            ),
        );
        S::mul(S::mul(S::splat(2.0), w), s)
    }
}

/// Explicit vector form of [`softplus_sig`]: `(softplus, sigma)` per
/// lane, bit-identical to the scalar pair (same select structure — the
/// big-argument short-circuit and the sign split are blends).
///
/// # Safety
///
/// Same ISA contract as [`exp_v`].
#[inline(always)]
pub unsafe fn softplus_sig_v<S: Simd>(t: S::V) -> (S::V, S::V) {
    // SAFETY: caller upholds the ISA contract; ops are lane-wise exact.
    unsafe {
        let e = exp_v::<S>(S::neg(S::abs(t)));
        let one = S::splat(1.0);
        let zero = S::splat(0.0);
        let q = S::div(e, S::add(one, e));
        let sp0 = S::add(S::sel(S::gt(t, zero), t, zero), ln1p01_v::<S>(e));
        let big = S::gt(t, S::splat(30.0));
        let sp = S::sel(big, t, sp0);
        let sig_pos = S::sel(big, one, S::sub(one, q));
        let sig = S::sel(S::ge(t, zero), sig_pos, q);
        (sp, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_libm_over_operating_range() {
        let mut worst = 0.0f64;
        let mut x = -59.9;
        while x < 59.9 {
            let got = exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.037;
        }
        assert!(worst < 5e-14, "worst relative error {worst:e}");
    }

    #[test]
    fn exp_clamps_like_safe_exp() {
        // Out-of-range arguments saturate to exactly the in-range
        // endpoint value (the clamp itself is exact); the endpoint
        // matches libm to the usual polynomial tolerance.
        assert_eq!(exp(-1e9), exp(-60.0));
        assert_eq!(exp(1e9), exp(60.0));
        assert_eq!(exp(f64::NEG_INFINITY), exp(-60.0));
        let rel = (exp(-60.0) - (-60.0f64).exp()).abs() / (-60.0f64).exp();
        assert!(rel < 5e-14, "clamp endpoint off by {rel:e}");
    }

    #[test]
    fn ln1p01_matches_libm() {
        let mut worst = 0.0f64;
        let mut u = 0.0;
        while u <= 1.0 {
            let got = ln1p01(u);
            let want = u.ln_1p();
            let denom = want.abs().max(1e-300);
            let rel = if u == 0.0 {
                got.abs()
            } else {
                ((got - want) / denom).abs()
            };
            worst = worst.max(rel);
            u += 1.0 / 512.0;
        }
        assert!(worst < 5e-15, "worst relative error {worst:e}");
    }

    #[test]
    fn softplus_sig_matches_scalar_reference() {
        // The scalar model's formulation, with libm.
        let reference = |t: f64| -> (f64, f64) {
            if t > 30.0 {
                (t, 1.0)
            } else {
                let e = t.clamp(-60.0, 60.0).exp();
                ((1.0 + e).ln(), e / (1.0 + e))
            }
        };
        let mut t = -80.0;
        while t < 80.0 {
            let (sp, sig) = softplus_sig(t);
            let (sp0, sig0) = reference(t);
            // At very negative t the reference's `(1 + e).ln()` rounds
            // to exactly 0 while ln1p01 keeps the ≈e tail, so allow a
            // tiny absolute slack alongside the relative bound.
            let sp_err = (sp - sp0).abs() / sp0.abs().max(1e-30);
            let sig_err = (sig - sig0).abs() / sig0.abs().max(1e-30);
            assert!(
                sp_err < 1e-12 || (sp - sp0).abs() < 1e-15,
                "softplus at t={t}: {sp} vs {sp0}"
            );
            assert!(sig_err < 1e-12, "sigma at t={t}: {sig} vs {sig0}");
            t += 0.173;
        }
    }

    #[test]
    fn array_forms_are_bit_identical_to_scalar() {
        let mut t = -70.0;
        while t < 70.0 {
            let ts = [t, t + 0.011, t + 7.3, t - 3.1];
            let (sp, sig) = softplus_sig_k(ts);
            let e = exp_k(ts);
            for l in 0..4 {
                let (sp0, sig0) = softplus_sig(ts[l]);
                assert_eq!(sp[l].to_bits(), sp0.to_bits(), "softplus at {}", ts[l]);
                assert_eq!(sig[l].to_bits(), sig0.to_bits(), "sigma at {}", ts[l]);
                assert_eq!(e[l].to_bits(), exp(ts[l]).to_bits(), "exp at {}", ts[l]);
            }
            t += 0.391;
        }
    }

    /// The explicit vector forms must be bit-identical to the scalar
    /// reference at every ISA level the hardware supports — this is the
    /// foundation the dispatched kernels' bit-identity contract rests
    /// on.
    #[test]
    fn vector_forms_are_bit_identical_to_scalar() {
        use crate::simd::{detected, Level, ScalarLanes, Simd};

        #[inline(always)]
        unsafe fn sweep<S: Simd>(xs: &[f64], sp: &mut [f64], sig: &mut [f64], ex: &mut [f64]) {
            let mut i = 0;
            while i + S::W <= xs.len() {
                // SAFETY: chunk bounds checked; caller provides the ISA.
                unsafe {
                    let t = S::ld(xs.as_ptr().add(i));
                    let (a, b) = softplus_sig_v::<S>(t);
                    S::st(sp.as_mut_ptr().add(i), a);
                    S::st(sig.as_mut_ptr().add(i), b);
                    S::st(ex.as_mut_ptr().add(i), exp_v::<S>(t));
                }
                i += S::W;
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        fn sweep_avx2(xs: &[f64], sp: &mut [f64], sig: &mut [f64], ex: &mut [f64]) {
            // SAFETY: inside an avx2 region.
            unsafe { sweep::<crate::simd::Avx2Lanes>(xs, sp, sig, ex) }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        fn sweep_avx512(xs: &[f64], sp: &mut [f64], sig: &mut [f64], ex: &mut [f64]) {
            // SAFETY: inside an avx512f region.
            unsafe { sweep::<crate::simd::Avx512Lanes>(xs, sp, sig, ex) }
        }

        let mut xs: Vec<f64> = Vec::new();
        let mut t = -70.0;
        while t < 70.0 {
            xs.push(t);
            t += 0.173;
        }
        xs.extend_from_slice(&[
            0.0,
            -0.0,
            29.999,
            30.0,
            30.001,
            60.0,
            -60.0,
            1e9,
            -1e9,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ]);
        while !xs.len().is_multiple_of(8) {
            xs.push(0.5);
        }
        let n = xs.len();

        let mut want_sp = vec![0.0; n];
        let mut want_sig = vec![0.0; n];
        let mut want_ex = vec![0.0; n];
        for (i, &x) in xs.iter().enumerate() {
            let (a, b) = softplus_sig(x);
            want_sp[i] = a;
            want_sig[i] = b;
            want_ex[i] = exp(x);
        }

        let check = |name: &str, sp: &[f64], sig: &[f64], ex: &[f64]| {
            for i in 0..n {
                assert_eq!(
                    sp[i].to_bits(),
                    want_sp[i].to_bits(),
                    "{name} sp at {}",
                    xs[i]
                );
                assert_eq!(
                    sig[i].to_bits(),
                    want_sig[i].to_bits(),
                    "{name} sig at {}",
                    xs[i]
                );
                assert_eq!(
                    ex[i].to_bits(),
                    want_ex[i].to_bits(),
                    "{name} exp at {}",
                    xs[i]
                );
            }
        };

        let (mut sp, mut sig, mut ex) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        // SAFETY: the scalar arm has no ISA requirements.
        unsafe { sweep::<ScalarLanes>(&xs, &mut sp, &mut sig, &mut ex) };
        check("scalar", &sp, &sig, &ex);

        #[cfg(target_arch = "x86_64")]
        {
            if detected() >= Level::Avx2 {
                let (mut sp, mut sig, mut ex) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
                // SAFETY: detection confirmed avx2.
                unsafe { sweep_avx2(&xs, &mut sp, &mut sig, &mut ex) };
                check("avx2", &sp, &sig, &ex);
            }
            if detected() >= Level::Avx512 {
                let (mut sp, mut sig, mut ex) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
                // SAFETY: detection confirmed avx512f.
                unsafe { sweep_avx512(&xs, &mut sp, &mut sig, &mut ex) };
                check("avx512", &sp, &sig, &ex);
            }
        }
        let _ = detected();
    }

    #[test]
    fn softplus_is_positive_and_monotone() {
        let mut prev = 0.0;
        let mut t = -40.0;
        while t < 40.0 {
            let (sp, sig) = softplus_sig(t);
            assert!(sp > 0.0, "softplus({t}) = {sp}");
            assert!((0.0..=1.0).contains(&sig));
            assert!(sp >= prev, "not monotone at {t}");
            prev = sp;
            t += 0.05;
        }
    }
}
