//! Branch-free elementary functions for lane-batched kernels.
//!
//! The batched Monte-Carlo engine evaluates the MOSFET model for K dies
//! in lockstep, with the lane index as the innermost loop. That loop
//! only autovectorizes if every operation inside it is branch-free and
//! call-free: `libm`'s `exp`/`ln` are opaque calls with internal
//! branches, so this module provides polynomial replacements written as
//! straight-line arithmetic (plus `select`-style conditionals that LLVM
//! lowers to vector blends).
//!
//! Accuracy is a few ulp worse than `libm` (relative error ≲ 1e-14 over
//! the simulator's operating range), far inside the batched engine's
//! 0.5 % agreement budget against the scalar engine — which keeps using
//! `libm` so the golden results stay untouched.

/// log2(e).
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// ln(2) split for Cody–Waite range reduction: the hi part's low
/// mantissa bits are zero so `n · LN2_HI` is exact for the n in range.
const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000); // ≈ 6.93147180369123816e-1
const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76); // ≈ 1.90821492927058770e-10
/// 1.5 · 2⁵², the round-to-nearest-integer shifter.
const SHIFT: f64 = 6_755_399_441_055_744.0;

/// Branch-free `exp(x)` with the same `[-60, 60]` argument clamp as the
/// scalar model's `safe_exp`.
///
/// Range reduction `x = n·ln2 + r` with `|r| ≤ ln2/2` via the
/// shift-add rounding trick (no `round` libcall), a degree-13 Taylor
/// polynomial on `r`, and exponent reassembly through the IEEE-754 bit
/// pattern. Every step is straight-line arithmetic, so a loop of these
/// across lanes vectorizes.
///
/// # Examples
///
/// ```
/// let y = rotsv_num::lanes::exp(1.0);
/// assert!((y - std::f64::consts::E).abs() < 1e-14);
/// ```
#[inline(always)]
pub fn exp(x: f64) -> f64 {
    let x = x.clamp(-60.0, 60.0);
    // n = round(x / ln2) without a round() call: adding 1.5·2⁵² forces
    // the low mantissa bits to hold the rounded integer.
    let t = x * LOG2_E + SHIFT;
    let n = t - SHIFT;
    // r = x - n·ln2 in two pieces to keep the reduction exact.
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // exp(r) on |r| ≤ 0.3466 by Horner; remainder < 1e-16 relative.
    let p = poly_exp(r);
    // 2ⁿ via the exponent field; |n| ≤ 87 so no overflow handling.
    let ni = n as i64;
    let scale = f64::from_bits(((ni + 1023) << 52) as u64);
    p * scale
}

/// Degree-13 Taylor polynomial of `exp` on `|r| ≤ ln2/2`.
#[inline(always)]
fn poly_exp(r: f64) -> f64 {
    const C: [f64; 14] = [
        1.0,
        1.0,
        1.0 / 2.0,
        1.0 / 6.0,
        1.0 / 24.0,
        1.0 / 120.0,
        1.0 / 720.0,
        1.0 / 5_040.0,
        1.0 / 40_320.0,
        1.0 / 362_880.0,
        1.0 / 3_628_800.0,
        1.0 / 39_916_800.0,
        1.0 / 479_001_600.0,
        1.0 / 6_227_020_800.0,
    ];
    let mut p = C[13];
    let mut i = 12;
    loop {
        p = p * r + C[i];
        if i == 0 {
            break;
        }
        i -= 1;
    }
    p
}

/// Branch-free `ln(1 + u)` for `u ∈ [0, 1]`.
///
/// Uses the atanh form `ln z = 2·atanh((z−1)/(z+1))` with `z = 1 + u`,
/// so the series argument `w ≤ 1/3` and a degree-16 Horner evaluation
/// in `w²` reaches full double precision.
///
/// # Examples
///
/// ```
/// let y = rotsv_num::lanes::ln1p01(0.5);
/// assert!((y - 1.5f64.ln()).abs() < 1e-15);
/// ```
#[inline(always)]
pub fn ln1p01(u: f64) -> f64 {
    let w = u / (2.0 + u);
    let w2 = w * w;
    // sum_{k=0..16} w^{2k} / (2k+1), innermost first.
    let mut s = 1.0 / 33.0;
    let mut k = 15i32;
    loop {
        s = s * w2 + 1.0 / (2 * k + 1) as f64;
        if k == 0 {
            break;
        }
        k -= 1;
    }
    2.0 * w * s
}

/// Branch-free unit-scale softplus `ln(1 + eᵗ)` and logistic
/// `σ(t) = 1/(1 + e⁻ᵗ)`, the pair the MOSFET model's smooth clamps are
/// built from.
///
/// Matches the scalar model's `softplus_grad(x, s)` after scaling
/// (`t = x/s`, softplus scaled by `s`), including its large-argument
/// short-circuit: for `t > 30` the pair is exactly `(t, 1)`.
#[inline(always)]
pub fn softplus_sig(t: f64) -> (f64, f64) {
    // exp(-|t|) ∈ (0, 1]: always in ln1p01's domain. The [-60, 60]
    // clamp inside `exp` mirrors the scalar model's safe_exp.
    let e = exp(-t.abs());
    let q = e / (1.0 + e); // σ(-|t|) ∈ (0, 1/2]
    let sp = t.max(0.0) + ln1p01(e);
    let big = t > 30.0;
    let sp = if big { t } else { sp };
    let sig_pos = if big { 1.0 } else { 1.0 - q };
    let sig = if t >= 0.0 { sig_pos } else { q };
    (sp, sig)
}

/// Array form of [`exp`]: all `K` lanes advance through the range
/// reduction and the Horner polynomial together, so each step is one
/// vector instruction and the (long) latency chain of the polynomial is
/// hidden across lanes.
///
/// # Examples
///
/// ```
/// let y = rotsv_num::lanes::exp_k([0.0, 1.0]);
/// assert!((y[1] - std::f64::consts::E).abs() < 1e-14);
/// ```
#[inline(always)]
pub fn exp_k<const K: usize>(x: [f64; K]) -> [f64; K] {
    let mut n = [0.0; K];
    let mut r = [0.0; K];
    for l in 0..K {
        let xl = x[l].clamp(-60.0, 60.0);
        let t = xl * LOG2_E + SHIFT;
        n[l] = t - SHIFT;
        r[l] = (xl - n[l] * LN2_HI) - n[l] * LN2_LO;
    }
    const C: [f64; 14] = [
        1.0,
        1.0,
        1.0 / 2.0,
        1.0 / 6.0,
        1.0 / 24.0,
        1.0 / 120.0,
        1.0 / 720.0,
        1.0 / 5_040.0,
        1.0 / 40_320.0,
        1.0 / 362_880.0,
        1.0 / 3_628_800.0,
        1.0 / 39_916_800.0,
        1.0 / 479_001_600.0,
        1.0 / 6_227_020_800.0,
    ];
    let mut p = [C[13]; K];
    let mut i = 12;
    loop {
        for l in 0..K {
            p[l] = p[l] * r[l] + C[i];
        }
        if i == 0 {
            break;
        }
        i -= 1;
    }
    let mut y = [0.0; K];
    for l in 0..K {
        let ni = n[l] as i64;
        let scale = f64::from_bits(((ni + 1023) << 52) as u64);
        y[l] = p[l] * scale;
    }
    y
}

/// Array form of [`ln1p01`]; same domain (`u ∈ [0, 1]`), lanes in
/// lockstep.
#[inline(always)]
pub fn ln1p01_k<const K: usize>(u: [f64; K]) -> [f64; K] {
    let mut w = [0.0; K];
    let mut w2 = [0.0; K];
    for l in 0..K {
        w[l] = u[l] / (2.0 + u[l]);
        w2[l] = w[l] * w[l];
    }
    let mut s = [1.0 / 33.0; K];
    let mut k = 15i32;
    loop {
        let c = 1.0 / (2 * k + 1) as f64;
        for l in 0..K {
            s[l] = s[l] * w2[l] + c;
        }
        if k == 0 {
            break;
        }
        k -= 1;
    }
    let mut y = [0.0; K];
    for l in 0..K {
        y[l] = 2.0 * w[l] * s[l];
    }
    y
}

/// Array form of [`softplus_sig`]: `(softplus, sigma)` for all `K`
/// lanes in lockstep. Bit-identical per lane to the scalar function.
#[inline(always)]
pub fn softplus_sig_k<const K: usize>(t: [f64; K]) -> ([f64; K], [f64; K]) {
    let mut ta = [0.0; K];
    for l in 0..K {
        ta[l] = -t[l].abs();
    }
    let e = exp_k(ta);
    let ln = ln1p01_k(e);
    let mut sp = [0.0; K];
    let mut sig = [0.0; K];
    for l in 0..K {
        let q = e[l] / (1.0 + e[l]);
        let sp0 = t[l].max(0.0) + ln[l];
        let big = t[l] > 30.0;
        sp[l] = if big { t[l] } else { sp0 };
        let sig_pos = if big { 1.0 } else { 1.0 - q };
        sig[l] = if t[l] >= 0.0 { sig_pos } else { q };
    }
    (sp, sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_libm_over_operating_range() {
        let mut worst = 0.0f64;
        let mut x = -59.9;
        while x < 59.9 {
            let got = exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.037;
        }
        assert!(worst < 5e-14, "worst relative error {worst:e}");
    }

    #[test]
    fn exp_clamps_like_safe_exp() {
        assert_eq!(exp(-1e9), (-60.0f64).exp());
        assert_eq!(exp(1e9), 60.0f64.exp());
        assert_eq!(exp(f64::NEG_INFINITY), (-60.0f64).exp());
    }

    #[test]
    fn ln1p01_matches_libm() {
        let mut worst = 0.0f64;
        let mut u = 0.0;
        while u <= 1.0 {
            let got = ln1p01(u);
            let want = u.ln_1p();
            let denom = want.abs().max(1e-300);
            let rel = if u == 0.0 {
                got.abs()
            } else {
                ((got - want) / denom).abs()
            };
            worst = worst.max(rel);
            u += 1.0 / 512.0;
        }
        assert!(worst < 5e-15, "worst relative error {worst:e}");
    }

    #[test]
    fn softplus_sig_matches_scalar_reference() {
        // The scalar model's formulation, with libm.
        let reference = |t: f64| -> (f64, f64) {
            if t > 30.0 {
                (t, 1.0)
            } else {
                let e = t.clamp(-60.0, 60.0).exp();
                ((1.0 + e).ln(), e / (1.0 + e))
            }
        };
        let mut t = -80.0;
        while t < 80.0 {
            let (sp, sig) = softplus_sig(t);
            let (sp0, sig0) = reference(t);
            // At very negative t the reference's `(1 + e).ln()` rounds
            // to exactly 0 while ln1p01 keeps the ≈e tail, so allow a
            // tiny absolute slack alongside the relative bound.
            let sp_err = (sp - sp0).abs() / sp0.abs().max(1e-30);
            let sig_err = (sig - sig0).abs() / sig0.abs().max(1e-30);
            assert!(
                sp_err < 1e-12 || (sp - sp0).abs() < 1e-15,
                "softplus at t={t}: {sp} vs {sp0}"
            );
            assert!(sig_err < 1e-12, "sigma at t={t}: {sig} vs {sig0}");
            t += 0.173;
        }
    }

    #[test]
    fn array_forms_are_bit_identical_to_scalar() {
        let mut t = -70.0;
        while t < 70.0 {
            let ts = [t, t + 0.011, t + 7.3, t - 3.1];
            let (sp, sig) = softplus_sig_k(ts);
            let e = exp_k(ts);
            for l in 0..4 {
                let (sp0, sig0) = softplus_sig(ts[l]);
                assert_eq!(sp[l].to_bits(), sp0.to_bits(), "softplus at {}", ts[l]);
                assert_eq!(sig[l].to_bits(), sig0.to_bits(), "sigma at {}", ts[l]);
                assert_eq!(e[l].to_bits(), exp(ts[l]).to_bits(), "exp at {}", ts[l]);
            }
            t += 0.391;
        }
    }

    #[test]
    fn softplus_is_positive_and_monotone() {
        let mut prev = 0.0;
        let mut t = -40.0;
        while t < 40.0 {
            let (sp, sig) = softplus_sig(t);
            assert!(sp > 0.0, "softplus({t}) = {sp}");
            assert!((0.0..=1.0).contains(&sig));
            assert!(sp >= prev, "not monotone at {t}");
            prev = sp;
            t += 0.05;
        }
    }
}
