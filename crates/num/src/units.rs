//! Newtypes for the physical quantities crossing public API boundaries.
//!
//! Internally the simulator works in raw SI `f64`s; at the API surface of
//! the TSV/test crates, quantities like supply voltage and fault resistance
//! are wrapped so a caller cannot pass a resistance where a voltage is
//! expected (C-NEWTYPE).

use std::fmt;

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $symbol:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw SI value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $symbol)
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }
    };
}

unit!(
    /// A voltage in volts.
    Volts,
    "V"
);
unit!(
    /// A time in seconds.
    Seconds,
    "s"
);
unit!(
    /// A resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// A capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// An area in square micrometers (the unit standard-cell libraries use).
    SquareMicrons,
    "µm²"
);

impl Seconds {
    /// Convenience constructor from picoseconds.
    pub fn from_ps(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Convenience constructor from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Value in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0 * 1e12
    }

    /// Value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }
}

impl Ohms {
    /// Convenience constructor from kiloohms.
    pub fn from_kilo(k: f64) -> Self {
        Ohms(k * 1e3)
    }
}

impl Farads {
    /// Convenience constructor from femtofarads.
    pub fn from_femto(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// Value in femtofarads.
    pub fn as_femto(self) -> f64 {
        self.0 * 1e15
    }
}

impl Hertz {
    /// The period corresponding to this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period(self) -> Seconds {
        assert!(self.0 != 0.0, "zero frequency has no period");
        Seconds(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Seconds::from_ps(5.0).as_ps(), 5.0);
        assert!((Seconds::from_ns(2.0).value() - 2e-9).abs() < 1e-24);
        assert_eq!(Farads::from_femto(59.0).as_femto(), 59.0);
        assert_eq!(Ohms::from_kilo(3.0).value(), 3000.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Volts(1.0) + Volts(0.1);
        assert!((a.value() - 1.1).abs() < 1e-15);
        let b = Seconds(2e-9) - Seconds(1e-9);
        assert!((b.as_ns() - 1.0).abs() < 1e-12);
        let c = Ohms(100.0) * 3.0;
        assert_eq!(c.value(), 300.0);
    }

    #[test]
    fn display_includes_symbol() {
        assert_eq!(Volts(1.1).to_string(), "1.1 V");
        assert_eq!(Ohms(3000.0).to_string(), "3000 Ω");
    }

    #[test]
    fn frequency_period_inverts() {
        let f = Hertz(200e6);
        assert!((f.period().as_ns() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Hertz(0.0).period();
    }
}
