//! Dense row-major matrices.
//!
//! MNA systems in this workspace stay small (a ring oscillator with five TSV
//! segments needs well under 200 unknowns), so a dense representation with
//! contiguous storage beats a sparse one on both simplicity and constant
//! factors.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use rotsv_num::matrix::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(1, 2)] = 4.5;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 4.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice of slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "row {i} has inconsistent length");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Adds `value` to entry `(i, j)`; the fundamental MNA "stamp" operation.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        self[(i, j)] += value;
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Maximum absolute entry; zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn add_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 4.0);
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = m.mul_vec(&[1.0, -1.0]);
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let m = Matrix::from_rows(&[&[1.0, -9.0], &[3.0, 4.0]]);
        assert_eq!(m.max_abs(), 9.0);
    }

    #[test]
    fn fill_zero_clears() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
