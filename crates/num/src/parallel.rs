//! A minimal scoped-thread parallel map with self-scheduling workers.
//!
//! Monte-Carlo experiments run hundreds of independent transient
//! simulations; this fans them out across CPU cores with plain
//! `std::thread::scope` — results are deterministic because every sample
//! derives its RNG from its own index, not from scheduling order.
//!
//! Work is distributed through a shared atomic index rather than static
//! contiguous chunks: per-item cost varies wildly in Monte-Carlo sweeps
//! (a stuck die bails after a cheap transient, an oscillating one runs
//! to the crossing count), so pre-assigned chunks strand workers idle
//! behind whichever chunk drew the expensive dies. With self-scheduling
//! every worker pulls the next unclaimed index the moment it finishes
//! its current one.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker cap; 0 means "auto" (available parallelism).
static THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads [`parallel_map`] may use
/// process-wide; `None` restores the default (available parallelism).
///
/// Backs the experiments binary's `--threads` flag. Results are
/// index-deterministic regardless of the limit, so this only affects
/// wall time (and lets tests compare serial vs parallel runs).
pub fn set_thread_limit(limit: Option<NonZeroUsize>) {
    THREAD_LIMIT.store(limit.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The effective worker-thread cap for an `n`-item map.
pub fn effective_threads(n: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    match THREAD_LIMIT.load(Ordering::Relaxed) {
        0 => auto,
        cap => cap.min(auto),
    }
    .min(n.max(1))
}

/// A worker panic captured by [`try_parallel_map`]: which index panicked
/// and the rendered panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index whose closure panicked.
    pub index: usize,
    /// The panic payload as text (`&str` / `String` payloads verbatim;
    /// other payload types are reported as opaque).
    pub payload: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker panicked at index {}: {}",
            self.index, self.payload
        )
    }
}

impl std::error::Error for WorkerPanic {}

fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Applies `f` to every index in `0..n` in parallel, capturing panics
/// per index instead of unwinding across the thread scope.
///
/// Returns one `Result` per index, in index order: `Ok(f(i))` for
/// indices that completed, `Err(WorkerPanic)` for indices whose closure
/// panicked. A panic on one index never prevents the remaining indices
/// from running — the Monte-Carlo fan-out and the campaign runner rely
/// on this to record a failed sample and continue.
///
/// `f` is wrapped in [`AssertUnwindSafe`]: callers must not rely on
/// shared state mutated by a panicking invocation.
pub fn try_parallel_map<T, F>(n: usize, f: F) -> Vec<Result<T, WorkerPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let guarded = |i: usize| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| WorkerPanic {
            index: i,
            payload: payload_text(payload),
        })
    };
    let threads = effective_threads(n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(guarded).collect();
    }
    run_self_scheduled(n, threads, &guarded)
}

/// Fans `0..n` out over `threads` workers that pull indices from a
/// shared atomic counter (self-scheduling). Each worker keeps its own
/// `(index, result)` list; the lists are scattered back into index
/// order after all workers join, so the output is independent of which
/// worker ran which index.
fn run_self_scheduled<T, F>(n: usize, threads: usize, guarded: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, guarded(i)));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker closures never unwind") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Applies `f` to every index in `0..n` in parallel and returns the
/// results in index order.
///
/// Uses up to `std::thread::available_parallelism()` worker threads
/// (see [`set_thread_limit`] to cap this).
/// Results are identical to a serial `(0..n).map(f).collect()`.
///
/// # Panics
///
/// Panics if `f` panics on any index, naming the lowest panicking index
/// and its payload. Unlike a raw `std::thread::scope` unwind, every
/// other index still runs to completion first ([`try_parallel_map`]
/// exposes the per-index results when the caller wants to continue
/// instead of panicking).
///
/// # Examples
///
/// ```
/// use rotsv_num::parallel::parallel_map;
///
/// let squares = parallel_map(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_parallel_map(n, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("parallel_map {p}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let par = parallel_map(100, |i| i as f64 * 1.5);
        let ser: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn thread_limit_caps_workers_without_changing_results() {
        set_thread_limit(NonZeroUsize::new(1));
        assert_eq!(effective_threads(64), 1);
        let capped = parallel_map(50, |i| i * 3);
        set_thread_limit(None);
        assert!(effective_threads(64) >= 1);
        let uncapped = parallel_map(50, |i| i * 3);
        assert_eq!(capped, uncapped);
    }

    #[test]
    fn try_map_captures_panic_index_and_runs_the_rest() {
        let out = try_parallel_map(40, |i| {
            if i == 17 {
                panic!("boom at {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 40);
        for (i, r) in out.iter().enumerate() {
            if i == 17 {
                let p = r.as_ref().expect_err("index 17 panicked");
                assert_eq!(p.index, 17);
                assert!(p.payload.contains("boom at 17"), "{}", p.payload);
            } else {
                assert_eq!(*r.as_ref().expect("other indices complete"), i * 2);
            }
        }
    }

    #[test]
    fn map_panic_names_the_index() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(8, |i| {
                if i == 3 {
                    panic!("bad sample");
                }
                i
            })
        })
        .expect_err("propagates");
        let msg = caught
            .downcast_ref::<String>()
            .expect("string payload")
            .clone();
        assert!(msg.contains("index 3"), "{msg}");
        assert!(msg.contains("bad sample"), "{msg}");
    }

    /// One item sleeps 30× longer than the rest. With the old static
    /// chunking the worker that owned the slow item's chunk was also
    /// stuck with its whole contiguous chunk (n/threads items); with
    /// self-scheduling the other workers drain the queue while the slow
    /// item runs, so the slow item's worker ends up with only a handful
    /// of items. Driven through `run_self_scheduled` directly so the
    /// scheduler is exercised even on single-core machines (where
    /// `effective_threads` would fall back to the serial path).
    #[test]
    fn self_scheduling_balances_skewed_work() {
        use std::sync::Mutex;
        use std::thread::ThreadId;
        use std::time::Duration;

        let n = 32;
        let threads = 4;
        let who: Mutex<Vec<Option<ThreadId>>> = Mutex::new(vec![None; n]);
        let guarded = |i: usize| {
            std::thread::sleep(Duration::from_millis(if i == 0 { 60 } else { 2 }));
            who.lock().unwrap()[i] = Some(std::thread::current().id());
            i * 2
        };
        let out = run_self_scheduled(n, threads, &guarded);
        assert_eq!(out, (0..n).map(|i| i * 2).collect::<Vec<_>>());

        let who = who.lock().unwrap();
        let slow = who[0].expect("index 0 ran");
        let slow_count = who.iter().filter(|t| **t == Some(slow)).count();
        // Static chunking would pin exactly n/threads = 8 items on the
        // slow worker; self-scheduling leaves it with far fewer because
        // the 60 ms sleep covers the other workers draining the queue.
        assert!(
            slow_count < n / threads,
            "slow worker ran {slow_count} of {n} items; the queue was not stolen from it"
        );
    }

    #[test]
    fn order_is_preserved_under_load() {
        let out = parallel_map(1000, |i| {
            // Unequal work per item to stress scheduling.
            let mut acc = 0u64;
            for k in 0..(i % 37) * 100 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }
}
