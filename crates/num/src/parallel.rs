//! A minimal scoped-thread parallel map.
//!
//! Monte-Carlo experiments run hundreds of independent transient
//! simulations; this fans them out across CPU cores with plain
//! `std::thread::scope` — results are deterministic because every sample
//! derives its RNG from its own index, not from scheduling order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker cap; 0 means "auto" (available parallelism).
static THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads [`parallel_map`] may use
/// process-wide; `None` restores the default (available parallelism).
///
/// Backs the experiments binary's `--threads` flag. Results are
/// index-deterministic regardless of the limit, so this only affects
/// wall time (and lets tests compare serial vs parallel runs).
pub fn set_thread_limit(limit: Option<NonZeroUsize>) {
    THREAD_LIMIT.store(limit.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The effective worker-thread cap for an `n`-item map.
pub fn effective_threads(n: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    match THREAD_LIMIT.load(Ordering::Relaxed) {
        0 => auto,
        cap => cap.min(auto),
    }
    .min(n.max(1))
}

/// Applies `f` to every index in `0..n` in parallel and returns the
/// results in index order.
///
/// Uses up to `std::thread::available_parallelism()` worker threads
/// (see [`set_thread_limit`] to cap this).
/// Results are identical to a serial `(0..n).map(f).collect()`.
///
/// # Panics
///
/// Panics (propagates) if `f` panics on any index.
///
/// # Examples
///
/// ```
/// use rotsv_num::parallel::parallel_map;
///
/// let squares = parallel_map(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (c, slice) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(c * chunk + j));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let par = parallel_map(100, |i| i as f64 * 1.5);
        let ser: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn thread_limit_caps_workers_without_changing_results() {
        set_thread_limit(NonZeroUsize::new(1));
        assert_eq!(effective_threads(64), 1);
        let capped = parallel_map(50, |i| i * 3);
        set_thread_limit(None);
        assert!(effective_threads(64) >= 1);
        let uncapped = parallel_map(50, |i| i * 3);
        assert_eq!(capped, uncapped);
    }

    #[test]
    fn order_is_preserved_under_load() {
        let out = parallel_map(1000, |i| {
            // Unequal work per item to stress scheduling.
            let mut acc = 0u64;
            for k in 0..(i % 37) * 100 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }
}
