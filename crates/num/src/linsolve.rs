//! LU factorization with partial pivoting.
//!
//! This is the inner linear solver of every Newton iteration in the circuit
//! simulator. MNA matrices are unsymmetric and can be poorly scaled (mixing
//! conductances of 1e-12 S and 1e3 S), so partial pivoting is required for
//! robustness.

use std::error::Error;
use std::fmt;

use crate::matrix::Matrix;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is (numerically) singular; holds the pivot column at which
    /// elimination broke down.
    Singular {
        /// Column at which no usable pivot was found.
        column: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    DimensionMismatch {
        /// Dimension of the factored matrix.
        expected: usize,
        /// Length of the supplied right-hand side.
        actual: usize,
    },
    /// The matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            SolveError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "right-hand side has length {actual}, expected {expected}"
                )
            }
            SolveError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
        }
    }
}

impl Error for SolveError {}

/// An LU factorization `P·A = L·U` of a square matrix.
///
/// # Examples
///
/// ```
/// use rotsv_num::matrix::Matrix;
/// use rotsv_num::linsolve::LuFactors;
///
/// # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let lu = LuFactors::factor(a)?;
/// let x = lu.solve(&[2.0, 3.0])?;
/// assert_eq!(x, vec![3.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (below diagonal, unit diagonal implied) and U (diagonal and
    /// above) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
}

/// Pivots with magnitude below this threshold are treated as singular.
const PIVOT_EPS: f64 = 1e-300;

impl LuFactors {
    /// Factors `a` in place, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for non-square input and
    /// [`SolveError::Singular`] when no usable pivot exists in some column.
    pub fn factor(mut a: Matrix) -> Result<Self, SolveError> {
        if !a.is_square() {
            return Err(SolveError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut pmax = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax <= PIVOT_EPS || !pmax.is_finite() {
                return Err(SolveError::Singular { column: k });
            }
            if p != k {
                a.swap_rows(p, k);
                perm.swap(p, k);
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let factor = a[(i, k)] / pivot;
                a[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let u = a[(k, j)];
                        a[(i, j)] -= factor * u;
                    }
                }
            }
        }
        Ok(Self { lu: a, perm })
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// The row permutation chosen by partial pivoting: position `i` of
    /// `P·A` holds original row `permutation()[i]`.
    ///
    /// The sparse solver ([`crate::sparse::SparseLu`]) reuses this order
    /// across refactorizations of matrices with the same pattern.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for j in 0..i {
                acc -= row[j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
        Ok(x)
    }
}

/// Convenience wrapper: factors `a` and solves a single right-hand side.
///
/// # Errors
///
/// Propagates any [`SolveError`] from factorization or substitution.
///
/// # Examples
///
/// ```
/// use rotsv_num::matrix::Matrix;
/// use rotsv_num::linsolve::solve;
///
/// # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let x = solve(a, &[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    LuFactors::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, b)| (ax - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_well_conditioned_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]);
        let b = [1.0, -2.0, 0.0];
        let x = solve(a.clone(), &b).unwrap();
        assert!(residual_norm(&a, &x, &b) < 1e-12);
        // Known solution (1, -2, -2).
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
        assert!((x[2] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]);
        let x = solve(a, &[4.0, 6.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match solve(a, &[1.0, 2.0]) {
            Err(SolveError::Singular { column }) => assert_eq!(column, 1),
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::factor(a),
            Err(SolveError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let lu = LuFactors::factor(Matrix::identity(2)).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(SolveError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn factors_reusable_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = LuFactors::factor(a.clone()).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -3.0]] {
            let x = lu.solve(&b).unwrap();
            assert!(residual_norm(&a, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn badly_scaled_system_still_solves() {
        // Mix of pico-scale and kilo-scale entries as in MNA matrices.
        let a = Matrix::from_rows(&[&[1e-12, 1.0], &[1.0, 1e3]]);
        let b = [1.0, 2.0];
        let x = solve(a.clone(), &b).unwrap();
        assert!(residual_norm(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn error_display_is_informative() {
        let e = SolveError::Singular { column: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 3");
    }
}
