#![warn(missing_docs)]

//! Numeric foundations for the `rotsv` workspace.
//!
//! The pre-bond TSV test reproduction needs a small, self-contained numeric
//! toolbox because no circuit-simulation ecosystem exists in Rust:
//!
//! * [`matrix`] — dense row-major matrices sized for Modified Nodal Analysis
//!   systems (tens to a few hundred unknowns),
//! * [`linsolve`] — LU factorization with partial pivoting used by the
//!   Newton loops of the DC and transient analyses,
//! * [`sparse`] — CSR sparse matrices and a staged, KLU-style sparse LU
//!   (BTF decomposition, per-block minimum-degree ordering, optional
//!   power-of-two equilibration, threshold partial pivoting) whose
//!   one-time symbolic analysis turns every later factorization into a
//!   value-only refactor (the simulator's workhorse; includes the
//!   [`sparse::SolverStats`] work counters), an options-aware
//!   topology-keyed [`sparse::SymbolicCache`], and a lane-interleaved
//!   [`sparse::BatchedLu`] for lockstep Monte-Carlo batches,
//! * [`lanes`] — branch-free elementary functions (`exp`, softplus)
//!   written so lane loops over them autovectorize, plus explicit
//!   vector forms generic over a [`simd`] ISA token,
//! * [`simd`] — runtime-dispatched `f64` lane vectors (AVX-512 / AVX2 /
//!   scalar, detected once per process) that the batched hot kernels
//!   are written against,
//! * [`stats`] — population statistics for Monte-Carlo spread/overlap
//!   analysis (Figs. 7, 9 and 10 of the paper),
//! * [`rng`] — seeded Gaussian sampling for process variation,
//! * [`interp`] — linear interpolation on sampled waveforms,
//! * [`units`] — newtypes for the physical quantities that cross crate
//!   boundaries (volts, seconds, ohms, farads).
//!
//! # Examples
//!
//! Solve a 2×2 system:
//!
//! ```
//! use rotsv_num::matrix::Matrix;
//! use rotsv_num::linsolve::LuFactors;
//!
//! # fn main() -> Result<(), rotsv_num::linsolve::SolveError> {
//! let mut a = Matrix::zeros(2, 2);
//! a[(0, 0)] = 2.0;
//! a[(0, 1)] = 1.0;
//! a[(1, 0)] = 1.0;
//! a[(1, 1)] = 3.0;
//! let lu = LuFactors::factor(a)?;
//! let x = lu.solve(&[3.0, 4.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod interp;
pub mod lanes;
pub mod linsolve;
pub mod matrix;
pub mod parallel;
pub mod rng;
pub mod simd;
pub mod sparse;
pub mod stats;
pub mod units;

pub use linsolve::{LuFactors, SolveError};
pub use matrix::Matrix;
pub use sparse::{
    AnalyzeOptions, BatchedLu, OrderingStrategy, Scaling, SolverStats, SparseLu, SparseMatrix,
    SymbolicCache, SymbolicLu,
};
pub use stats::Summary;
