//! Fault diagnosis: estimate *how big* a defect is from ΔT.
//!
//! Calibrates ΔT-vs-size curves for resistive opens and leakage faults,
//! then diagnoses defect sizes the calibration never saw — including a
//! multi-voltage refinement for leaks, whose low-voltage ΔT is far more
//! sensitive.
//!
//! Run with:
//! ```text
//! cargo run --release --example fault_diagnosis
//! ```

use rotsv::aliasing::FaultFamily;
use rotsv::diagnose::DiagnosisCurve;
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

fn main() -> Result<(), rotsv::spice::SpiceError> {
    let bench = TestBench::fast(2);
    let die = Die::nominal();

    println!("calibrating diagnosis curves (nominal die, V_DD = 1.1 V) …");
    let open_curve = DiagnosisCurve::calibrate(
        &bench,
        1.1,
        FaultFamily::ResistiveOpen,
        &[0.25e3, 0.5e3, 1e3, 2e3, 4e3, 8e3],
    )?;
    let leak_curve_nom = DiagnosisCurve::calibrate(
        &bench,
        1.1,
        FaultFamily::Leakage,
        &[2.5e3, 3.5e3, 5e3, 8e3, 15e3, 40e3],
    )?;
    let leak_curve_low = DiagnosisCurve::calibrate(
        &bench,
        0.95,
        FaultFamily::Leakage,
        &[4e3, 5e3, 7e3, 10e3, 20e3, 50e3],
    )?;

    println!("\ncalibrated ΔT(R_O) at 1.1 V:");
    for (size, dt) in open_curve.points() {
        println!("  R_O = {size:7.0} Ω  ->  ΔT = {:7.1} ps", dt * 1e12);
    }

    println!("\ndiagnosing unseen defects:");
    for (label, fault, curve, vdd) in [
        (
            "open 1.5 kΩ",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(1.5e3),
            },
            &open_curve,
            1.1,
        ),
        (
            "leak 6 kΩ (nominal V)",
            TsvFault::Leakage { r: Ohms(6e3) },
            &leak_curve_nom,
            1.1,
        ),
        (
            "leak 6 kΩ (low V)",
            TsvFault::Leakage { r: Ohms(6e3) },
            &leak_curve_low,
            0.95,
        ),
        (
            "leak 12 kΩ (low V)",
            TsvFault::Leakage { r: Ohms(12e3) },
            &leak_curve_low,
            0.95,
        ),
    ] {
        let faults = [fault, TsvFault::None];
        let dt = bench
            .measure_delta_t(vdd, &faults, &[0], &die)?
            .delta()
            .expect("these sizes oscillate");
        let est = curve.estimate_size(dt);
        println!(
            "  {label:24} measured ΔT = {:7.1} ps  ->  estimated {:7.0} Ω",
            dt * 1e12,
            est.value()
        );
    }
    println!(
        "\n(low-voltage leak curves are steeper near the stop threshold, so the \
         same ΔT resolution buys a finer R_L estimate — the diagnosis face of \
         the paper's multi-voltage argument)"
    );
    Ok(())
}
