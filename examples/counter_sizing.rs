//! Counter sizing: dimension the on-chip measurement logic.
//!
//! Given the oscillation-period range of the ring-oscillator DfT and a
//! target measurement error, this example sizes the reference window and
//! the counter width (Section IV-C of the paper), verifies the result
//! against the cycle-accurate counter model, and compares the binary
//! counter with the LFSR alternative.
//!
//! Run with:
//! ```text
//! cargo run --release --example counter_sizing
//! ```

use rotsv::dft::counter::GatedCounter;
use rotsv::dft::lfsr::{gate_cost_comparison, Lfsr};
use rotsv::dft::measure::{error_bounds, required_bits, required_window};

fn main() {
    // Period range the DfT must measure: the fastest ring (all TSVs
    // bypassed, high V_DD) to the slowest (N segments at 0.7 V).
    let t_min = 1.0e-9;
    let t_max = 8.0e-9;
    // Target resolution: well below the ~15 ps ΔT of a small open.
    let target_error = 2.0e-12;

    println!(
        "counter sizing for T ∈ [{:.1}, {:.1}] ns, target |E| ≤ {:.1} ps\n",
        t_min * 1e9,
        t_max * 1e9,
        target_error * 1e12
    );

    // The slowest oscillation needs the longest window.
    let window = required_window(t_max, target_error);
    let bits = required_bits(window, t_min);
    println!("required window  t = {:.1} µs", window * 1e6);
    println!(
        "required counter = {bits} bits (max count {:.0})",
        window / t_min
    );

    // Verify across the period range with the cycle-accurate model.
    println!("\nverification over sampling phases:");
    let g = GatedCounter::new(window, bits);
    for &t in &[t_min, 2.5e-9, 5e-9, t_max] {
        let (e_minus, e_plus) = error_bounds(t, window);
        let worst = (0..100)
            .map(|k| {
                let est = g.measure(t, t * k as f64 / 100.0).expect("oscillating");
                (est - t).abs()
            })
            .fold(0.0f64, f64::max);
        println!(
            "  T = {:4.1} ns: worst |E| = {:6.3} ps (bound [{:.3}, {:.3}] ps)  {}",
            t * 1e9,
            worst * 1e12,
            e_minus * 1e12,
            e_plus * 1e12,
            if worst <= e_plus { "ok" } else { "VIOLATION" }
        );
    }

    // Counter vs LFSR trade-off.
    let (counter_gates, lfsr_gates) = gate_cost_comparison(bits, 6);
    let lut_entries = Lfsr::new(bits).sequence_length();
    println!("\nmeasurement-logic trade-off at {bits} bits:");
    println!("  binary counter : {counter_gates} gate equivalents, direct decode");
    println!(
        "  LFSR           : {lfsr_gates} gate equivalents, needs a {lut_entries}-entry \
         decode LUT on the tester"
    );
    println!(
        "\n(the paper: the LFSR \"requires less gates for the same upper limit on \
         the count; however, a look-up table is needed\")"
    );
}
