//! Quickstart: measure ΔT for a healthy and a defective TSV.
//!
//! Builds the paper's ring-oscillator DfT around two TSVs, runs the
//! two-run ΔT procedure on three dies — clean, with a resistive open,
//! and with a leakage fault — and classifies the results.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::{DetectionThresholds, Die, TestBench};

fn main() -> Result<(), rotsv::spice::SpiceError> {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let vdd = 1.1;

    println!(
        "pre-bond TSV test quickstart (V_DD = {vdd} V, N = {})\n",
        bench.n_segments
    );

    // 1. Fault-free reference: ΔT is the healthy I/O-segment delay.
    let clean = bench.measure_delta_t(vdd, &[TsvFault::None; 2], &[0], &die)?;
    let dt_clean = clean.delta().expect("healthy ring oscillates");
    println!("fault-free      ΔT = {:8.1} ps", dt_clean * 1e12);

    // 2. Set an acceptance band around the healthy value (a real flow
    //    calibrates this from a Monte-Carlo population — see the
    //    wafer_screening example).
    let band = DetectionThresholds {
        lower: dt_clean - 15e-12,
        upper: dt_clean + 15e-12,
    };

    // 3. Screen defective TSVs.
    let cases = [
        (
            "3 kΩ open (x=0.5)",
            TsvFault::ResistiveOpen {
                x: 0.5,
                r: Ohms(3e3),
            },
        ),
        ("3 kΩ leakage", TsvFault::Leakage { r: Ohms(3e3) }),
        ("500 Ω leakage", TsvFault::Leakage { r: Ohms(500.0) }),
    ];
    for (label, fault) in cases {
        let m = bench.measure_delta_t(vdd, &[fault, TsvFault::None], &[0], &die)?;
        let verdict = band.classify(&m);
        match m.delta() {
            Some(dt) => println!("{label:16} ΔT = {:8.1} ps  -> {verdict:?}", dt * 1e12),
            None => println!("{label:16} ΔT =    STUCK  -> {verdict:?}"),
        }
    }
    Ok(())
}
