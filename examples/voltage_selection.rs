//! Voltage selection: why the paper tests at multiple supply levels.
//!
//! Sweeps the supply voltage and reports the detection margin of a
//! resistive open and of a leakage fault at each level. Opens separate
//! best at high V_DD; leakage explodes near the low-voltage
//! oscillation-stop threshold — so a good plan combines one high and one
//! low voltage.
//!
//! Run with:
//! ```text
//! cargo run --release --example voltage_selection
//! ```

use rotsv::num::parallel::parallel_map;
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::{Die, TestBench};

/// One report row: `(vdd, dt_ff, open_shift, leak_shift)`.
type VoltageRow = (f64, f64, Option<f64>, Option<f64>);

fn main() -> Result<(), rotsv::spice::SpiceError> {
    let bench = TestBench::fast(2);
    let die = Die::nominal();
    let voltages = [0.85, 0.95, 1.05, 1.1, 1.2];
    let open = TsvFault::ResistiveOpen {
        x: 0.5,
        r: Ohms(1e3),
    };
    let leak = TsvFault::Leakage { r: Ohms(3e3) };

    println!("per-voltage ΔT shifts of a 1 kΩ open and a 3 kΩ leak (nominal die)\n");
    println!(
        "{:>6}  {:>12}  {:>14}  {:>14}",
        "V_DD", "ΔT_ff (ps)", "open shift(ps)", "leak shift(ps)"
    );

    let rows: Vec<Result<VoltageRow, rotsv::spice::SpiceError>> =
        parallel_map(voltages.len(), |i| {
            let vdd = voltages[i];
            let ff = [TsvFault::None, TsvFault::None];
            let dt = |fault: TsvFault| -> Result<Option<f64>, rotsv::spice::SpiceError> {
                let faults = [fault, TsvFault::None];
                Ok(bench.measure_delta_t(vdd, &faults, &[0], &die)?.delta())
            };
            let dt_ff = bench
                .measure_delta_t(vdd, &ff, &[0], &die)?
                .delta()
                .expect("healthy ring oscillates");
            Ok((vdd, dt_ff, dt(open)?, dt(leak)?))
        });

    let mut best_open = (0.0f64, f64::MIN);
    let mut best_leak = (0.0f64, f64::MIN);
    for row in rows {
        let (vdd, dt_ff, dt_open, dt_leak) = row?;
        let open_shift = dt_open.map(|d| d - dt_ff);
        let leak_shift = dt_leak.map(|d| d - dt_ff);
        // Margin = |shift|; a stuck ring is an unmissable detection.
        if let Some(s) = open_shift {
            if s.abs() > best_open.1 {
                best_open = (vdd, s.abs());
            }
        }
        let leak_margin = leak_shift.map_or(f64::INFINITY, f64::abs);
        if leak_margin > best_leak.1 {
            best_leak = (vdd, leak_margin);
        }
        println!(
            "{vdd:>6.2}  {:>12.1}  {:>14}  {:>14}",
            dt_ff * 1e12,
            open_shift.map_or("-".into(), |s| format!("{:+.1}", s * 1e12)),
            leak_shift.map_or("STUCK".into(), |s| format!("{:+.1}", s * 1e12)),
        );
    }

    println!(
        "\nrecommended plan: test opens at {:.2} V, leakage at {:.2} V",
        best_open.0, best_leak.0
    );
    println!("(the paper's conclusion: high V_DD for opens, low V_DD for weak leakage)");
    Ok(())
}
