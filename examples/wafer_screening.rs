//! Wafer screening: the full production flow on a simulated wafer.
//!
//! 1. Calibrate a multi-voltage test plan from fault-free Monte-Carlo
//!    dies (this sets the per-voltage ΔT acceptance bands).
//! 2. "Fabricate" a wafer of dies with random process variation; inject
//!    defects into a known subset of TSVs.
//! 3. Screen every die and compare verdicts against the injected truth:
//!    test escapes, overkill, and fault-type classification accuracy.
//!
//! Run with:
//! ```text
//! cargo run --release --example wafer_screening
//! ```

use rotsv::num::parallel::parallel_map;
use rotsv::num::rng::GaussianRng;
use rotsv::num::units::Ohms;
use rotsv::tsv::TsvFault;
use rotsv::variation::ProcessSpread;
use rotsv::{Die, MultiVoltagePlan, TestBench, Verdict};

/// Ground truth for one die on the wafer.
#[derive(Debug, Clone, Copy)]
struct WaferDie {
    die: Die,
    fault: TsvFault,
}

fn inject_faults(n_dies: usize, seed: u64) -> Vec<WaferDie> {
    let mut rng = GaussianRng::seed_from(seed);
    (0..n_dies)
        .map(|i| {
            let die = Die::new(ProcessSpread::paper(), seed.wrapping_add(1000 + i as u64));
            // ~2/3 healthy; defect sizes drawn over the detectable ranges.
            let roll = rng.uniform(0.0, 1.0);
            let fault = if roll < 0.66 {
                TsvFault::None
            } else if roll < 0.83 {
                TsvFault::ResistiveOpen {
                    x: rng.uniform(0.3, 0.9),
                    r: Ohms(rng.uniform(2e3, 50e3)),
                }
            } else {
                TsvFault::Leakage {
                    r: Ohms(rng.uniform(0.4e3, 4e3)),
                }
            };
            WaferDie { die, fault }
        })
        .collect()
}

fn main() -> Result<(), rotsv::spice::SpiceError> {
    let bench = TestBench::fast(2);
    let voltages = [1.1, 0.9];
    println!("calibrating acceptance bands at {voltages:?} V …");
    let plan = MultiVoltagePlan::calibrate(
        bench,
        &voltages,
        ProcessSpread::paper(),
        7,
        8,
        25e-12, // guard band, seconds
    )?;
    for p in plan.points() {
        println!(
            "  {:.2} V: pass band [{:.1}, {:.1}] ps",
            p.vdd,
            p.thresholds.lower * 1e12,
            p.thresholds.upper * 1e12
        );
    }

    let wafer = inject_faults(16, 2024);
    println!("\nscreening {} dies …", wafer.len());
    let results: Vec<Result<Verdict, rotsv::spice::SpiceError>> = parallel_map(wafer.len(), |i| {
        let w = &wafer[i];
        let faults = [w.fault, TsvFault::None];
        Ok(plan.screen(&faults, 0, &w.die)?.verdict)
    });

    let mut escapes = 0usize;
    let mut overkill = 0usize;
    let mut misclassified = 0usize;
    println!(
        "\n{:<4} {:<34} {:<18} outcome",
        "die", "injected fault", "verdict"
    );
    for (i, (w, verdict)) in wafer.iter().zip(&results).enumerate() {
        let verdict = verdict.as_ref().expect("simulation succeeded").to_owned();
        let expected_fault = !w.fault.is_fault_free();
        let flagged = verdict.is_fault();
        let outcome = match (expected_fault, flagged) {
            (false, false) => "ok (pass)",
            (true, true) => {
                let class_ok = matches!(
                    (w.fault, verdict),
                    (TsvFault::ResistiveOpen { .. }, Verdict::ResistiveOpen)
                        | (
                            TsvFault::Leakage { .. },
                            Verdict::Leakage | Verdict::StuckAt0
                        )
                );
                if class_ok {
                    "ok (detected + classified)"
                } else {
                    misclassified += 1;
                    "detected, class differs"
                }
            }
            (true, false) => {
                escapes += 1;
                "TEST ESCAPE"
            }
            (false, true) => {
                overkill += 1;
                "overkill"
            }
        };
        println!(
            "{i:<4} {:<34} {:<18} {outcome}",
            format!("{:?}", w.fault),
            format!("{verdict:?}")
        );
    }
    let faulty = wafer.iter().filter(|w| !w.fault.is_fault_free()).count();
    println!(
        "\nsummary: {} dies, {} defective — escapes: {escapes}, overkill: {overkill}, \
         detected-but-misclassified: {misclassified}",
        wafer.len(),
        faulty
    );
    Ok(())
}
